//! Decoder-throughput tracking: measures the syndrome hot path and the
//! LER shot loop, prints a table, and emits `BENCH_decoders.json` so the
//! performance trajectory is recorded from PR to PR.
//!
//! Measured kernels:
//!
//! * `sticky_boolvec` — the seed's `Vec<bool>` sticky filter (the
//!   baseline the packed rewrite is judged against);
//! * `sticky_packed` — the word-packed filter on identical rounds;
//! * `sticky_packed_frontend` — filter plus the full Clique decision;
//! * `offchip_{dense,sparse}_d{5,9,13,17,21}` — the `sparse_vs_dense`
//!   decode group: the dense all-pairs blossom versus the sparse
//!   region-growth matcher on identical noisy windows, reported as
//!   decoded rounds per second (windows/s × rounds per window);
//! * `chained_{dense,sparse}_d{17,21}` — the `chained_cluster` group:
//!   the same comparison at p = 5e-3, the operational-rate regime where
//!   whole windows collapse into a few large clusters and the in-solver
//!   sparse blossom replaces the old dense per-cluster fallback;
//! * `streaming_{incremental,fromscratch}_d{13,17,21}_slide{1,d}` — the
//!   `streaming_decode` group: the incremental sliding-window sparse
//!   decode (persistent regions, collision edges, and cluster solutions
//!   across slides) versus a from-scratch sparse decode of every
//!   position of a 6d-round window on one continuous p = 5e-3 trace;
//! * `ler_d{7,11}_{mwpm,clique}` — the Fig. 14 shot loop, reported as
//!   decoded rounds per second;
//! * `sweep_{scoped_per_point,pooled_grid}` — the `sweep_throughput`
//!   schedule comparison: the pre-pool per-point scoped-thread sweep
//!   versus the whole-grid work-stealing pool on a mixed-distance
//!   `(p, d)` grid at fixed total trials;
//! * `machine_faulty_step_p{0,5e-2,2e-1}` — the `fault_sweep` group:
//!   the identical batched machine-step workload driven through a
//!   perfect off-chip link versus progressively hostile
//!   `LinkFaultModel::uniform(rate)` links, measuring what CRC checks,
//!   NACK/retransmit retries, and graceful degradation cost in step
//!   throughput (retransmit/degradation counts land in the detail
//!   column);
//! * `sweep_smallbatch_{spawn_per_map,persistent}` — the pool-mode
//!   comparison: the sweep grid scheduled as many tiny `map` calls
//!   (the decode service's per-cycle dispatch shape), legacy
//!   spawn-per-call versus parked persistent workers;
//! * `farm_{inline,fleet}_8x` — the `decode_farm` group: an
//!   8-machine mixed-distance fleet decoded concurrently through one
//!   bounded `DecodeFarm` versus eight independent inline loops, with
//!   the farm's p99 queue-depth backlog in the detail column.
//!
//! `BTWC_SCALE` scales the measurement budgets as usual.

use std::fmt::Write as _;
use std::time::Instant;

use btwc_bench::baseline::{
    coverage_sweep_per_point, sample_noisy_rounds, sample_noisy_window, sample_streaming_trace,
    BoolVecHistory,
};
use btwc_bench::{
    machine_step_workload, print_table, scaled, sweep_throughput_axes, SWEEP_BENCH_WORKERS,
};
use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_mwpm::MwpmDecoder;
use btwc_noise::SimRng;
use btwc_sim::{
    coverage_sweep, logical_error_rate, DecoderBackend, DecoderKind, LifetimeConfig, ShotConfig,
};
use btwc_sparse::SparseDecoder;
use btwc_syndrome::{PackedBits, RoundHistory, Syndrome};

struct Entry {
    name: String,
    rounds_per_sec: f64,
    detail: String,
}

fn time_rounds(iters: u64, mut f: impl FnMut()) -> f64 {
    // One warm-up pass at 1/8 scale, then the measured run.
    for _ in 0..iters / 8 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    iters as f64 / start.elapsed().as_secs_f64()
}

fn sticky_benches(entries: &mut Vec<Entry>) -> (f64, f64) {
    let d = 11u16;
    let code = SurfaceCode::new(d);
    let n_anc = code.num_ancillas(StabilizerType::X);
    let rounds = sample_noisy_rounds(&code, 512, 2e-3, 7);
    let packed: Vec<PackedBits> = rounds.iter().map(|r| PackedBits::from_bools(r)).collect();
    let iters = scaled(2_000_000);

    let mut h = BoolVecHistory::new(n_anc, 2);
    let mut i = 0;
    let boolvec = time_rounds(iters, || {
        i = (i + 1) % rounds.len();
        h.push(&rounds[i]);
        std::hint::black_box(h.sticky(2));
    });
    entries.push(Entry {
        name: "sticky_boolvec".into(),
        rounds_per_sec: boolvec,
        detail: format!("d={d} Vec<bool> baseline"),
    });

    let mut h = RoundHistory::new(n_anc, 2);
    let mut out = Syndrome::new(n_anc);
    let mut i = 0;
    let packed_rate = time_rounds(iters, || {
        i = (i + 1) % packed.len();
        h.push_packed(&packed[i]);
        h.sticky_into(2, &mut out);
        std::hint::black_box(out.weight());
    });
    entries.push(Entry {
        name: "sticky_packed".into(),
        rounds_per_sec: packed_rate,
        detail: format!("d={d} word-packed"),
    });

    let mut fe = btwc_clique::CliqueFrontend::new(&code, StabilizerType::X);
    let mut i = 0;
    let frontend_rate = time_rounds(iters, || {
        i = (i + 1) % packed.len();
        std::hint::black_box(fe.push_round_packed(&packed[i]));
    });
    entries.push(Entry {
        name: "sticky_packed_frontend".into(),
        rounds_per_sec: frontend_rate,
        detail: format!("d={d} filter + Clique decision"),
    });

    (boolvec, packed_rate)
}

/// Shared dense-vs-sparse decode measurement: both exact matchers on
/// identical noisy windows per distance at error rate `p`, pushing
/// `{prefix}_dense_d{d}` / `{prefix}_sparse_d{d}` entries and returning
/// the sparse/dense speedup per `(d, iters)` plan entry, in plan order.
fn decode_group_benches(
    entries: &mut Vec<Entry>,
    prefix: &str,
    p: f64,
    seed: u64,
    plan: &[(u16, u64)],
    dense_label: &str,
    sparse_label: &str,
) -> Vec<f64> {
    let ty = StabilizerType::X;
    let mut speedups = Vec::with_capacity(plan.len());
    for &(d, base_iters) in plan {
        let code = SurfaceCode::new(d);
        let mut dense = MwpmDecoder::new(&code, ty);
        let mut sparse = SparseDecoder::new(&code, ty);
        let mut rng = SimRng::from_seed(seed);
        let rounds = usize::from(d) + 1;
        let windows: Vec<RoundHistory> =
            (0..32).map(|_| sample_noisy_window(&code, ty, p, usize::from(d), &mut rng)).collect();
        let events: usize =
            windows.iter().map(RoundHistory::detection_event_count).sum::<usize>() / windows.len();
        let iters = scaled(base_iters);

        let mut i = 0;
        let dense_rate = time_rounds(iters, || {
            i = (i + 1) % windows.len();
            std::hint::black_box(dense.decode_window_mut(&windows[i]).weight());
        }) * rounds as f64;
        entries.push(Entry {
            name: format!("{prefix}_dense_d{d}"),
            rounds_per_sec: dense_rate,
            detail: format!("{dense_label}, ~{events} events/window"),
        });

        let mut i = 0;
        let sparse_rate = time_rounds(iters, || {
            i = (i + 1) % windows.len();
            std::hint::black_box(sparse.decode_window_mut(&windows[i]).weight());
        }) * rounds as f64;
        entries.push(Entry {
            name: format!("{prefix}_sparse_d{d}"),
            rounds_per_sec: sparse_rate,
            detail: format!("{sparse_label}, ~{events} events/window"),
        });
        speedups.push(sparse_rate / dense_rate.max(1e-12));
    }
    speedups
}

/// The `sparse_vs_dense` decode group at the paper's operational error
/// rate (p = 1e-3). Returns the sparse/dense speedups at d = 13 and
/// d = 21 (the acceptance bar is a clear sparse win at d ≥ 13).
/// Iteration budgets shrink with d: a dense d = 21 decode is five
/// orders slower than a d = 5 one.
fn sparse_vs_dense_benches(entries: &mut Vec<Entry>) -> (f64, f64) {
    let s = decode_group_benches(
        entries,
        "offchip",
        1e-3,
        8,
        &[(5, 100_000), (9, 40_000), (13, 8_000), (17, 1_500), (21, 400)],
        "all-pairs blossom",
        "region collisions + clusters",
    );
    (s[2], s[4])
}

/// The `chained_cluster` decode group at p = 5e-3 and d ∈ {17, 21} —
/// the chained-cluster regime where the pre-in-solver sparse path used
/// to fall back to a dense blossom per cluster. Returns the
/// sparse/dense speedups at d = 17 and d = 21 (the acceptance bar is
/// ≥ 2x at d = 17).
fn chained_cluster_benches(entries: &mut Vec<Entry>) -> (f64, f64) {
    let s = decode_group_benches(
        entries,
        "chained",
        5e-3,
        0xC4A1,
        &[(17, 600), (21, 200)],
        "p=5e-3 all-pairs blossom",
        "p=5e-3 in-solver sparse blossom",
    );
    (s[0], s[1])
}

/// The `streaming_decode` comparison: the incremental sliding-window
/// sparse decode versus a from-scratch sparse decode of every window
/// position, on one continuous noisy trace per distance (p = 5e-3, a
/// 6d-round window sliding `slide` rounds between decodes — long
/// windows are where streaming pays: per-position work tracks the
/// per-slide dirt, not the window). Slide-by-1 is the streaming regime
/// the incremental state was built for; slide-by-d forces deep slide
/// compaction each step. Both arms time from a pre-filled, once-decoded
/// window so slide-by-1 measures the steady state rather than the
/// fill-up. Returns the incremental/from-scratch speedups at slide 1
/// for d = 13, 17, 21 (the acceptance bar is ≥ 3x at d ≥ 17).
fn streaming_benches(entries: &mut Vec<Entry>) -> (f64, f64, f64) {
    let ty = StabilizerType::X;
    let p = 5e-3;
    let mut slide1_speedups = Vec::new();
    for &(d, slide1_iters, slided_iters) in
        &[(13u16, 1_200u64, 240u64), (17, 400, 80), (21, 120, 24)]
    {
        let code = SurfaceCode::new(d);
        let n_anc = code.num_ancillas(ty);
        let w = 6 * usize::from(d);
        let trace = sample_streaming_trace(&code, 512, p, 4, 0x57E4 + u64::from(d));
        let packed: Vec<PackedBits> = trace.iter().map(|r| PackedBits::from_bools(r)).collect();
        for (slide, base_iters) in [(1usize, slide1_iters), (usize::from(d), slided_iters)] {
            let iters = scaled(base_iters);

            let mut dec = SparseDecoder::new(&code, ty);
            let mut window = RoundHistory::new(n_anc, w);
            let mut i = 0;
            for _ in 0..w {
                window.push_packed(&packed[i]);
                i = (i + 1) % packed.len();
            }
            std::hint::black_box(dec.decode_stream_weighted(&window).1);
            let incremental = time_rounds(iters, || {
                for _ in 0..slide {
                    window.push_packed(&packed[i]);
                    i = (i + 1) % packed.len();
                }
                std::hint::black_box(dec.decode_stream_weighted(&window).1);
            }) * slide as f64;
            entries.push(Entry {
                name: format!("streaming_incremental_d{d}_slide{slide}"),
                rounds_per_sec: incremental,
                detail: format!("p={p}, {w}-round window, incremental stream decode"),
            });

            let mut dec = SparseDecoder::new(&code, ty);
            let mut window = RoundHistory::new(n_anc, w);
            let mut i = 0;
            for _ in 0..w {
                window.push_packed(&packed[i]);
                i = (i + 1) % packed.len();
            }
            std::hint::black_box(dec.decode_window_weighted(&window).1);
            let fromscratch = time_rounds(iters, || {
                for _ in 0..slide {
                    window.push_packed(&packed[i]);
                    i = (i + 1) % packed.len();
                }
                std::hint::black_box(dec.decode_window_weighted(&window).1);
            }) * slide as f64;
            entries.push(Entry {
                name: format!("streaming_fromscratch_d{d}_slide{slide}"),
                rounds_per_sec: fromscratch,
                detail: format!("p={p}, {w}-round window, batch decode per position"),
            });

            if slide == 1 {
                slide1_speedups.push(incremental / fromscratch.max(1e-12));
            }
        }
    }
    (slide1_speedups[0], slide1_speedups[1], slide1_speedups[2])
}

fn ler_benches(entries: &mut Vec<Entry>) {
    for d in [7u16, 11] {
        let shots = scaled(400);
        for (kind, label) in
            [(DecoderKind::MwpmOnly, "mwpm"), (DecoderKind::CliquePlusMwpm, "clique")]
        {
            let cfg = ShotConfig::new(d, 2e-3).with_shots(shots).with_seed(3);
            let start = Instant::now();
            let est = logical_error_rate(&cfg, kind);
            let elapsed = start.elapsed().as_secs_f64();
            let decoded_rounds = est.shots * cfg.rounds as u64;
            entries.push(Entry {
                name: format!("ler_d{d}_{label}"),
                rounds_per_sec: decoded_rounds as f64 / elapsed,
                detail: format!("{} shots, LER {:.2e}", est.shots, est.rate()),
            });
        }
    }
}

/// The `sweep_throughput` schedule comparison: identical mixed-distance
/// grid and per-point cycle budget, scheduled the old way (per-point
/// scoped threads, a barrier and `workers` thread spawns + pipeline
/// constructions at every point) versus the pooled way (every
/// `(point, shard)` task in one work-stealing pool). Returns the
/// pooled/scoped wall-clock speedup — the PR's acceptance number.
fn sweep_benches(entries: &mut Vec<Entry>) -> f64 {
    let (rates, distances) = sweep_throughput_axes();
    let cycles = scaled(2_000);
    // Resolve the effective count once (a `BTWC_WORKERS` override
    // applies to the pool arm either way; the scoped baseline spawns
    // raw threads) so both schedules run at the same width and the
    // recorded details stay truthful.
    let workers = btwc_pool::Pool::new(SWEEP_BENCH_WORKERS).workers();
    let total_cycles = (cycles * (rates.len() * distances.len()) as u64) as f64;
    let reps = 6;

    let scoped = time_rounds(reps, || {
        std::hint::black_box(coverage_sweep_per_point(&rates, &distances, cycles, 11, workers));
    }) * total_cycles;
    entries.push(Entry {
        name: "sweep_scoped_per_point".into(),
        rounds_per_sec: scoped,
        detail: format!(
            "d∈{{3,7,13}}, {} pts × {cycles} cycles, {workers} threads/pt",
            rates.len() * distances.len()
        ),
    });

    let pooled = time_rounds(reps, || {
        std::hint::black_box(coverage_sweep(&rates, &distances, cycles, 11, workers));
    }) * total_cycles;
    entries.push(Entry {
        name: "sweep_pooled_grid".into(),
        rounds_per_sec: pooled,
        detail: format!("same grid, all shards in one {workers}-worker pool, per-point grid seeds"),
    });
    pooled / scoped.max(1e-12)
}

/// The `machine_step` comparison: one batched `BtwcMachine::step`
/// versus the per-qubit reference loop (one `process_round_packed` per
/// qubit plus a hand-stepped queue) on identical pre-generated
/// transient-noise streams (d = 9, 64 qubits, p = 1e-3 per ancilla).
/// Returns the batched/per-qubit throughput ratio — the machine-tier
/// acceptance number.
fn machine_benches(entries: &mut Vec<Entry>) -> f64 {
    use btwc_bandwidth::QueueSim;
    use btwc_core::{BtwcDecoder, BtwcMachine};

    let d = 9u16;
    let qubits = 64usize;
    let (code, batches, rounds) = machine_step_workload(d, qubits, 512, 1e-3, 0xBA7C);
    let iters = scaled(100_000);

    let mut decoders: Vec<BtwcDecoder> =
        (0..qubits).map(|_| BtwcDecoder::builder(&code, StabilizerType::X).build()).collect();
    let mut queue = QueueSim::new(qubits);
    let mut i = 0;
    let per_qubit = time_rounds(iters, || {
        i = (i + 1) % rounds.len();
        let mut offchip = 0usize;
        for (dec, round) in decoders.iter_mut().zip(&rounds[i]) {
            offchip += usize::from(dec.process_round_packed(round).went_offchip());
        }
        std::hint::black_box(queue.step(offchip));
    }) * qubits as f64;
    entries.push(Entry {
        name: "machine_per_qubit_loop".into(),
        rounds_per_sec: per_qubit,
        detail: format!("d={d}, {qubits} qubits, per-qubit BtwcDecoder loop"),
    });

    let mut machine = BtwcMachine::builder(&code, StabilizerType::X, qubits, qubits).build();
    let mut i = 0;
    let batched = time_rounds(iters, || {
        i = (i + 1) % batches.len();
        std::hint::black_box(machine.step(&batches[i]).offchip_requests);
    }) * qubits as f64;
    entries.push(Entry {
        name: "machine_batched_step".into(),
        rounds_per_sec: batched,
        detail: format!("d={d}, {qubits} qubits, one word-parallel BtwcMachine::step"),
    });
    batched / per_qubit.max(1e-12)
}

/// The `fault_sweep` group: the machine-step workload through the
/// fault-tolerant transport at increasing link fault rates. Rate 0 is
/// the always-on baseline (v2 CRC framing and the fault-model branch
/// are in the hot path even for a perfect link — this entry prices
/// that); the hostile rates add real retransmissions (each one a full
/// extra frame through the link plus an off-chip decode attempt) and,
/// at the top rate, retry-budget exhaustion into on-chip emergency
/// corrections. Returns the hostile(0.2)/perfect throughput ratio.
fn fault_sweep_benches(entries: &mut Vec<Entry>) -> f64 {
    use btwc_core::{BtwcMachine, LinkFaultModel};

    let d = 9u16;
    let qubits = 64usize;
    let (code, batches, _) = machine_step_workload(d, qubits, 512, 1e-3, 0xBA7C);
    let iters = scaled(100_000);

    let mut rates_seen = Vec::new();
    for rate in [0.0f64, 5e-2, 2e-1] {
        let mut machine = BtwcMachine::builder(&code, StabilizerType::X, qubits, qubits)
            .fault_model(LinkFaultModel::uniform(rate))
            .link_seed(0xFA17)
            .build();
        let mut i = 0;
        let rps = time_rounds(iters, || {
            i = (i + 1) % batches.len();
            std::hint::black_box(machine.step(&batches[i]).offchip_requests);
        }) * qubits as f64;
        let t = machine.transport_stats();
        entries.push(Entry {
            name: format!("machine_faulty_step_p{rate:e}"),
            rounds_per_sec: rps,
            detail: format!(
                "d={d}, {qubits} qubits, fault rate {rate}: {} retrans, {} degraded",
                t.retransmitted_frames, t.degraded_decodes
            ),
        });
        rates_seen.push(rps);
    }
    rates_seen[2] / rates_seen[0].max(1e-12)
}

/// The `decode_farm` group: an 8-machine fleet (mixed distances and
/// backends, two tenants per decoder slot so cross-tenant batching
/// happens) decoded concurrently through one bounded `DecodeFarm`,
/// versus the same eight machines run as independent inline loops.
/// Returns the farm's p99 queue-depth backlog — the service-level
/// acceptance number (it must stay bounded under fleet demand).
fn decode_farm_benches(entries: &mut Vec<Entry>) -> u64 {
    use btwc_pool::Pool;
    use btwc_sim::{machine_farm_trace, machine_offchip_trace, FarmConfig, FarmTenant};

    let shapes = [
        (3u16, DecoderBackend::SparseBlossom),
        (5, DecoderBackend::SparseBlossom),
        (3, DecoderBackend::UnionFind),
        (5, DecoderBackend::UnionFind),
        (3, DecoderBackend::SparseBlossom),
        (5, DecoderBackend::SparseBlossom),
        (3, DecoderBackend::UnionFind),
        (5, DecoderBackend::UnionFind),
    ];
    let cycles = scaled(300);
    let qubits = 3usize;
    let bandwidth = 2usize;
    let cfgs: Vec<LifetimeConfig> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(d, backend))| {
            let p = if d == 3 { 5e-2 } else { 2.2e-2 };
            LifetimeConfig::new(d, p)
                .with_cycles(cycles)
                .with_seed(0xFA12 + i as u64)
                .with_backend(backend)
        })
        .collect();
    let tenants: Vec<FarmTenant> =
        cfgs.iter().map(|cfg| FarmTenant::new(*cfg, qubits, bandwidth)).collect();
    let total_rounds = (cfgs.len() * qubits) as f64 * cycles as f64;
    let reps = 8;

    let inline = time_rounds(reps, || {
        for cfg in &cfgs {
            std::hint::black_box(machine_offchip_trace(cfg, qubits, bandwidth));
        }
    }) * total_rounds;
    entries.push(Entry {
        name: "farm_inline_8x".into(),
        rounds_per_sec: inline,
        detail: format!("8 machines d∈{{3,5}}, {cycles} cycles, independent inline decode loops"),
    });

    // Service rate just above the fleet's mean demand (~1.6
    // escalations/cycle), so bursts queue — the p99 backlog is a real
    // queueing number — but the farm always drains.
    let capacity = 64u64;
    let config = || {
        let mut cfg = FarmConfig::bounded(capacity, 2);
        cfg.snapshot_cadence = Some(cycles);
        cfg
    };
    let mut last = None;
    let farm = time_rounds(reps, || {
        last = Some(machine_farm_trace(&tenants, config(), Pool::new(SWEEP_BENCH_WORKERS)));
    }) * total_rounds;
    let run = last.expect("at least one farm rep ran");
    let p99_backlog = json_histogram_p99(&run.aggregate_json, "farm.queue_depth_hist");
    entries.push(Entry {
        name: "farm_fleet_8x".into(),
        rounds_per_sec: farm,
        detail: format!(
            "same 8 machines through one bounded farm (cap {capacity}, rate 2): \
             p99 backlog {p99_backlog}, final depth {}",
            run.final_queue_depth
        ),
    });
    assert!(
        p99_backlog < capacity / 2 && run.final_queue_depth < capacity / 2,
        "fleet backlog must stay bounded well below queue capacity"
    );
    p99_backlog
}

/// Pulls `"p99":N` out of one named histogram in a
/// `btwc-telemetry-v1` snapshot JSON string.
fn json_histogram_p99(json: &str, metric: &str) -> u64 {
    let at = json.find(&format!("\"{metric}\"")).expect("metric present in snapshot");
    let tail = &json[at..];
    let p = tail.find("\"p99\":").expect("histogram has a p99 field") + "\"p99\":".len();
    tail[p..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("p99 is an integer")
}

/// The pool-mode comparison on the sweep-throughput grid, scheduled
/// the way a decode service submits work: long-lived streaming sweep
/// shards (one `LifetimeSim` per `(distance, worker)`, built outside
/// the timed region) advanced a few cycles at a time, one small `map`
/// call per point-slice, instead of one whole-grid task set. The
/// grid's base noise rate keeps the per-task decode cost uniform and
/// small, so the measurement prices the dispatch itself: the legacy
/// mode pays a full thread spawn/join per call, the persistent mode's
/// parked workers make that per-call cost vanish. Returns the
/// persistent/legacy speedup — the `btwc-pool` acceptance number
/// (bar: ≥ 1.5x).
fn pool_mode_benches(entries: &mut Vec<Entry>) -> f64 {
    use std::sync::Mutex;

    use btwc_pool::{Pool, PoolMode};
    use btwc_sim::{grid_point_seed, LifetimeSim};

    let (rates, distances) = sweep_throughput_axes();
    let p = rates.iter().copied().fold(f64::INFINITY, f64::min);
    let workers = Pool::new(SWEEP_BENCH_WORKERS).workers();
    let slice_cycles = 10u64;
    let slices = scaled(300);
    let total_rounds = (distances.len() * workers) as f64 * (slices * slice_cycles) as f64;
    let reps = 4;
    let mut modes = Vec::new();
    for (mode, name, how) in [
        (PoolMode::Legacy, "sweep_smallbatch_spawn_per_map", "threads spawned per map call"),
        (PoolMode::Persistent, "sweep_smallbatch_persistent", "parked persistent workers"),
    ] {
        let sims: Vec<Vec<Mutex<LifetimeSim>>> = distances
            .iter()
            .enumerate()
            .map(|(di, &d)| {
                let root = SimRng::from_seed(grid_point_seed(11, 0, di));
                (0..workers)
                    .map(|w| {
                        let cfg = LifetimeConfig::new(d, p)
                            .with_cycles(u64::MAX)
                            .with_seed(root.fork(w as u64).seed());
                        Mutex::new(LifetimeSim::new(&cfg))
                    })
                    .collect()
            })
            .collect();
        let pool = Pool::new(SWEEP_BENCH_WORKERS).with_mode(mode);
        let rate = time_rounds(reps, || {
            for _ in 0..slices {
                for point in &sims {
                    std::hint::black_box(pool.map_indices(workers, |w| {
                        let mut sim = point[w].lock().expect("shard slot");
                        let mut flips = 0u64;
                        for _ in 0..slice_cycles {
                            flips += u64::from(sim.step());
                        }
                        flips
                    }));
                }
            }
        }) * total_rounds;
        entries.push(Entry {
            name: name.into(),
            rounds_per_sec: rate,
            detail: format!(
                "streaming d∈{{3,7,13}} shards @ p={p:.0e}, one {workers}×{slice_cycles}-cycle \
                 map per point-slice, {how}"
            ),
        });
        modes.push(rate);
    }
    modes[1] / modes[0].max(1e-12)
}

/// Paired-passes overhead measurement: each rep times the bare arm and
/// the instrumented arm back to back and records the on/off rate
/// ratio; the reported overhead is `1 - median(ratios)`. A single long
/// run per arm is dominated by clock/cache drift between the two runs
/// (on a noisy host individual passes report anywhere from -25% to
/// +13% on a sub-1% effect). Pairing puts both arms in the same few
/// milliseconds of host weather, and the median discards the reps a
/// noise burst split down the middle.
const TELEMETRY_REPS: usize = 12;

/// Minimum iterations per alternating pass — below this the timing
/// window is too short to average over scheduler jitter.
const TELEMETRY_MIN_ITERS: u64 = 40;

/// `1 - median(on/off ratios)`, the paired overhead estimate.
fn overhead_from_ratios(mut ratios: Vec<f64>) -> f64 {
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    let mid = ratios.len() / 2;
    let median =
        if ratios.len() % 2 == 1 { ratios[mid] } else { (ratios[mid - 1] + ratios[mid]) / 2.0 };
    1.0 - median
}

/// The `--telemetry` overhead comparison: the identical machine-step
/// and streaming-decode workloads with and without a live
/// [`btwc_telemetry::MetricsRegistry`] attached. Returns the
/// (machine, streaming) overhead fractions (0.01 = the instrumented
/// run is 1% slower); the acceptance bar is < 3% on both, which is why
/// every hot-path record is a relaxed atomic add with no locking and
/// the stream decoder batches per-cluster replay counts into one add.
fn telemetry_overhead_benches(entries: &mut Vec<Entry>) -> (f64, f64) {
    use btwc_core::BtwcMachine;
    use btwc_telemetry::MetricsRegistry;

    let d = 9u16;
    let qubits = 64usize;
    let (code, batches, _) = machine_step_workload(d, qubits, 512, 1e-3, 0xBA7C);
    let iters = scaled(100_000);

    let mut plain = BtwcMachine::builder(&code, StabilizerType::X, qubits, qubits).build();
    let registry = MetricsRegistry::new();
    let mut instrumented =
        BtwcMachine::builder(&code, StabilizerType::X, qubits, qubits).telemetry(&registry).build();
    let mut rates = [0.0f64; 2];
    let mut ratios = Vec::with_capacity(TELEMETRY_REPS);
    for _ in 0..TELEMETRY_REPS {
        let per_rep = (iters / TELEMETRY_REPS as u64).max(TELEMETRY_MIN_ITERS);
        let mut rep = [0.0f64; 2];
        for (slot, machine) in [&mut plain, &mut instrumented].into_iter().enumerate() {
            let mut i = 0;
            rep[slot] = time_rounds(per_rep, || {
                i = (i + 1) % batches.len();
                std::hint::black_box(machine.step(&batches[i]).offchip_requests);
            }) * qubits as f64;
            rates[slot] = rates[slot].max(rep[slot]);
        }
        ratios.push(rep[1] / rep[0].max(1e-12));
    }
    let [detached, attached] = rates;
    entries.push(Entry {
        name: "machine_step_telemetry_off".into(),
        rounds_per_sec: detached,
        detail: format!("d={d}, {qubits} qubits, no registry attached"),
    });
    entries.push(Entry {
        name: "machine_step_telemetry_on".into(),
        rounds_per_sec: attached,
        detail: format!("d={d}, {qubits} qubits, machine.* metrics live"),
    });
    let machine_overhead = overhead_from_ratios(ratios);

    let ty = StabilizerType::X;
    let d = 13u16;
    let code = SurfaceCode::new(d);
    let n_anc = code.num_ancillas(ty);
    let w = 6 * usize::from(d);
    let trace = sample_streaming_trace(&code, 512, 5e-3, 4, 0x57E4 + u64::from(d));
    let packed: Vec<PackedBits> = trace.iter().map(|r| PackedBits::from_bools(r)).collect();
    let iters = scaled(1_200);
    // One long-lived streaming decoder per arm (steady-state stream
    // cache), alternated between passes.
    let registry = MetricsRegistry::new();
    let mut arms: Vec<(SparseDecoder, RoundHistory, usize)> = [None, Some(&registry)]
        .into_iter()
        .map(|registry| {
            let mut dec = SparseDecoder::new(&code, ty);
            if let Some(registry) = registry {
                dec.attach_telemetry(registry);
            }
            let mut window = RoundHistory::new(n_anc, w);
            let mut i = 0;
            for _ in 0..w {
                window.push_packed(&packed[i]);
                i = (i + 1) % packed.len();
            }
            std::hint::black_box(dec.decode_stream_weighted(&window).1);
            (dec, window, i)
        })
        .collect();
    let mut rates = [0.0f64; 2];
    let mut ratios = Vec::with_capacity(TELEMETRY_REPS);
    for _ in 0..TELEMETRY_REPS {
        let per_rep = (iters / TELEMETRY_REPS as u64).max(TELEMETRY_MIN_ITERS);
        let mut rep = [0.0f64; 2];
        for (slot, (dec, window, i)) in arms.iter_mut().enumerate() {
            rep[slot] = time_rounds(per_rep, || {
                window.push_packed(&packed[*i]);
                *i = (*i + 1) % packed.len();
                std::hint::black_box(dec.decode_stream_weighted(window).1);
            });
            rates[slot] = rates[slot].max(rep[slot]);
        }
        ratios.push(rep[1] / rep[0].max(1e-12));
    }
    for (slot, name) in ["off", "on"].into_iter().enumerate() {
        entries.push(Entry {
            name: format!("streaming_decode_telemetry_{name}"),
            rounds_per_sec: rates[slot],
            detail: format!("d={d}, {w}-round window, slide-1 incremental stream decode"),
        });
    }
    let stream_overhead = overhead_from_ratios(ratios);
    (machine_overhead, stream_overhead)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let measure_telemetry = std::env::args().any(|a| a == "--telemetry");
    let mut entries = Vec::new();
    let (boolvec, packed) = sticky_benches(&mut entries);
    let (sparse_d13, sparse_d21) = sparse_vs_dense_benches(&mut entries);
    let (chained_d17, chained_d21) = chained_cluster_benches(&mut entries);
    let (stream_d13, stream_d17, stream_d21) = streaming_benches(&mut entries);
    ler_benches(&mut entries);
    let sweep_speedup = sweep_benches(&mut entries);
    let pool_mode_speedup = pool_mode_benches(&mut entries);
    let machine_speedup = machine_benches(&mut entries);
    let fault_ratio = fault_sweep_benches(&mut entries);
    let farm_p99_backlog = decode_farm_benches(&mut entries);
    let telemetry_overheads = measure_telemetry.then(|| telemetry_overhead_benches(&mut entries));
    let speedup = packed / boolvec.max(1e-12);

    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| vec![e.name.clone(), format!("{:.3e}", e.rounds_per_sec), e.detail.clone()])
        .collect();
    println!("# Decoder throughput (rounds/sec)\n");
    print_table(&["kernel", "rounds/s", "detail"], &rows);
    println!("\nsticky filter packed vs Vec<bool> baseline: {speedup:.1}x");
    println!("machine batched step vs per-qubit loop: {machine_speedup:.1}x");
    println!("off-chip sparse vs dense decode: {sparse_d13:.1}x at d=13, {sparse_d21:.1}x at d=21");
    println!(
        "chained clusters (p=5e-3) sparse vs dense: {chained_d17:.1}x at d=17, \
         {chained_d21:.1}x at d=21"
    );
    println!(
        "streaming slide-by-1 incremental vs from-scratch sparse: {stream_d13:.1}x at d=13, \
         {stream_d17:.1}x at d=17, {stream_d21:.1}x at d=21"
    );
    println!("whole-grid pooled sweep vs per-point scoped threads: {sweep_speedup:.1}x");
    println!(
        "persistent parked workers vs per-map spawn on small batches: {pool_mode_speedup:.1}x \
         (bar: ≥ 1.5x)"
    );
    println!("machine step through a 20%-fault link vs perfect link: {fault_ratio:.2}x throughput");
    println!("decode farm, 8-machine fleet: p99 queue backlog {farm_p99_backlog} jobs");
    if let Some((machine_overhead, stream_overhead)) = telemetry_overheads {
        println!(
            "telemetry overhead (on vs off): machine step {:.2}%, streaming decode {:.2}% \
             (bar: < 3%)",
            machine_overhead * 100.0,
            stream_overhead * 100.0
        );
    }

    let mut json =
        String::from("{\n  \"benchmark\": \"BENCH_decoders\",\n  \"unit\": \"rounds_per_sec\",\n");
    let _ = writeln!(json, "  \"sticky_packed_speedup_vs_boolvec\": {speedup:.3},");
    let _ = writeln!(json, "  \"offchip_sparse_speedup_vs_dense_d13\": {sparse_d13:.3},");
    let _ = writeln!(json, "  \"offchip_sparse_speedup_vs_dense_d21\": {sparse_d21:.3},");
    let _ = writeln!(json, "  \"chained_sparse_speedup_vs_dense_d17\": {chained_d17:.3},");
    let _ = writeln!(json, "  \"chained_sparse_speedup_vs_dense_d21\": {chained_d21:.3},");
    let _ = writeln!(
        json,
        "  \"streaming_sparse_speedup_vs_fromscratch_d13_slide1\": {stream_d13:.3},"
    );
    let _ = writeln!(
        json,
        "  \"streaming_sparse_speedup_vs_fromscratch_d17_slide1\": {stream_d17:.3},"
    );
    let _ = writeln!(
        json,
        "  \"streaming_sparse_speedup_vs_fromscratch_d21_slide1\": {stream_d21:.3},"
    );
    let _ = writeln!(json, "  \"sweep_pooled_speedup_vs_scoped\": {sweep_speedup:.3},");
    let _ = writeln!(json, "  \"pool_persistent_speedup_vs_spawn\": {pool_mode_speedup:.3},");
    let _ = writeln!(json, "  \"machine_batched_speedup_vs_perqubit\": {machine_speedup:.3},");
    let _ = writeln!(json, "  \"machine_faulty_link_throughput_ratio_p2e-1\": {fault_ratio:.3},");
    let _ = writeln!(json, "  \"farm_fleet_p99_backlog\": {farm_p99_backlog},");
    if let Some((machine_overhead, stream_overhead)) = telemetry_overheads {
        let _ = writeln!(json, "  \"machine_step_telemetry_overhead\": {machine_overhead:.4},");
        let _ = writeln!(json, "  \"streaming_decode_telemetry_overhead\": {stream_overhead:.4},");
    }
    json.push_str("  \"results\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"rounds_per_sec\": {:.3}, \"detail\": \"{}\"}}{comma}",
            json_escape(&e.name),
            e.rounds_per_sec,
            json_escape(&e.detail)
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_decoders.json", &json).expect("write BENCH_decoders.json");
    println!("\nwrote BENCH_decoders.json");
}
