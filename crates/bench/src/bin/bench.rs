//! Decoder-throughput tracking: measures the syndrome hot path and the
//! LER shot loop, prints a table, and emits `BENCH_decoders.json` so the
//! performance trajectory is recorded from PR to PR.
//!
//! Measured kernels:
//!
//! * `sticky_boolvec` — the seed's `Vec<bool>` sticky filter (the
//!   baseline the packed rewrite is judged against);
//! * `sticky_packed` — the word-packed filter on identical rounds;
//! * `sticky_packed_frontend` — filter plus the full Clique decision;
//! * `ler_d{7,11}_{mwpm,clique}` — the Fig. 14 shot loop, reported as
//!   decoded rounds per second.
//!
//! `BTWC_SCALE` scales the measurement budgets as usual.

use std::fmt::Write as _;
use std::time::Instant;

use btwc_bench::baseline::{sample_noisy_rounds, BoolVecHistory};
use btwc_bench::{print_table, scaled};
use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_sim::{logical_error_rate, DecoderKind, ShotConfig};
use btwc_syndrome::{PackedBits, RoundHistory, Syndrome};

struct Entry {
    name: String,
    rounds_per_sec: f64,
    detail: String,
}

fn time_rounds(iters: u64, mut f: impl FnMut()) -> f64 {
    // One warm-up pass at 1/8 scale, then the measured run.
    for _ in 0..iters / 8 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    iters as f64 / start.elapsed().as_secs_f64()
}

fn sticky_benches(entries: &mut Vec<Entry>) -> (f64, f64) {
    let d = 11u16;
    let code = SurfaceCode::new(d);
    let n_anc = code.num_ancillas(StabilizerType::X);
    let rounds = sample_noisy_rounds(&code, 512, 2e-3, 7);
    let packed: Vec<PackedBits> = rounds.iter().map(|r| PackedBits::from_bools(r)).collect();
    let iters = scaled(2_000_000);

    let mut h = BoolVecHistory::new(n_anc, 2);
    let mut i = 0;
    let boolvec = time_rounds(iters, || {
        i = (i + 1) % rounds.len();
        h.push(&rounds[i]);
        std::hint::black_box(h.sticky(2));
    });
    entries.push(Entry {
        name: "sticky_boolvec".into(),
        rounds_per_sec: boolvec,
        detail: format!("d={d} Vec<bool> baseline"),
    });

    let mut h = RoundHistory::new(n_anc, 2);
    let mut out = Syndrome::new(n_anc);
    let mut i = 0;
    let packed_rate = time_rounds(iters, || {
        i = (i + 1) % packed.len();
        h.push_packed(&packed[i]);
        h.sticky_into(2, &mut out);
        std::hint::black_box(out.weight());
    });
    entries.push(Entry {
        name: "sticky_packed".into(),
        rounds_per_sec: packed_rate,
        detail: format!("d={d} word-packed"),
    });

    let mut fe = btwc_clique::CliqueFrontend::new(&code, StabilizerType::X);
    let mut i = 0;
    let frontend_rate = time_rounds(iters, || {
        i = (i + 1) % packed.len();
        std::hint::black_box(fe.push_round_packed(&packed[i]));
    });
    entries.push(Entry {
        name: "sticky_packed_frontend".into(),
        rounds_per_sec: frontend_rate,
        detail: format!("d={d} filter + Clique decision"),
    });

    (boolvec, packed_rate)
}

fn ler_benches(entries: &mut Vec<Entry>) {
    for d in [7u16, 11] {
        let shots = scaled(400);
        for (kind, label) in
            [(DecoderKind::MwpmOnly, "mwpm"), (DecoderKind::CliquePlusMwpm, "clique")]
        {
            let cfg = ShotConfig::new(d, 2e-3).with_shots(shots).with_seed(3);
            let start = Instant::now();
            let est = logical_error_rate(&cfg, kind);
            let elapsed = start.elapsed().as_secs_f64();
            let decoded_rounds = est.shots * cfg.rounds as u64;
            entries.push(Entry {
                name: format!("ler_d{d}_{label}"),
                rounds_per_sec: decoded_rounds as f64 / elapsed,
                detail: format!("{} shots, LER {:.2e}", est.shots, est.rate()),
            });
        }
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let mut entries = Vec::new();
    let (boolvec, packed) = sticky_benches(&mut entries);
    ler_benches(&mut entries);
    let speedup = packed / boolvec.max(1e-12);

    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| vec![e.name.clone(), format!("{:.3e}", e.rounds_per_sec), e.detail.clone()])
        .collect();
    println!("# Decoder throughput (rounds/sec)\n");
    print_table(&["kernel", "rounds/s", "detail"], &rows);
    println!("\nsticky filter packed vs Vec<bool> baseline: {speedup:.1}x");

    let mut json =
        String::from("{\n  \"benchmark\": \"BENCH_decoders\",\n  \"unit\": \"rounds_per_sec\",\n");
    let _ = writeln!(json, "  \"sticky_packed_speedup_vs_boolvec\": {speedup:.3},");
    json.push_str("  \"results\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"rounds_per_sec\": {:.3}, \"detail\": \"{}\"}}{comma}",
            json_escape(&e.name),
            e.rounds_per_sec,
            json_escape(&e.detail)
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_decoders.json", &json).expect("write BENCH_decoders.json");
    println!("\nwrote BENCH_decoders.json");
}
