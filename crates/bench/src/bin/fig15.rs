//! Fig. 15: power, area and latency of the Clique SFQ implementation
//! versus code distance, with the paper's NISQ+ comparison at d=9.

use btwc_bench::print_table;
use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_sfq::{nisq_plus_anchor, synthesize_clique, CostModel};

fn main() {
    println!("# Fig. 15 — Clique ERSFQ implementation costs\n");
    let model = CostModel::default();
    let rows: Vec<Vec<String>> = [3u16, 5, 7, 9, 11, 13, 15, 17, 19, 21]
        .into_iter()
        .map(|d| {
            let synth = synthesize_clique(&SurfaceCode::new(d), StabilizerType::X, 2);
            let r = model.report(synth.netlist());
            vec![
                d.to_string(),
                r.gate_count.to_string(),
                r.jj_count.to_string(),
                format!("{:.1}", r.power_uw),
                format!("{:.2}", r.area_mm2),
                format!("{:.3}", r.latency_ns),
            ]
        })
        .collect();
    print_table(&["d", "gates", "JJs", "power (uW)", "area (mm2)", "latency (ns)"], &rows);

    let d9 = synthesize_clique(&SurfaceCode::new(9), StabilizerType::X, 2);
    let r9 = model.report(d9.netlist());
    let a = nisq_plus_anchor();
    println!("\nNISQ+ @ d=9 (paper anchors): power {:.0} uW ({}x), area {:.1} mm2 ({}x), latency {:.2} ns ({}x avg, {}x worse worst-case)",
        r9.power_uw * a.power_ratio, a.power_ratio,
        r9.area_mm2 * a.area_ratio, a.area_ratio,
        r9.latency_ns * a.latency_ratio, a.latency_ratio, a.worst_case_latency_factor);
}
