//! Fig. 16: bandwidth-reduction vs execution-time-increase trade-off
//! curves for three (physical error rate, code distance) scenarios.

use btwc_bandwidth::{sweep_tradeoff, ArrivalModel};
use btwc_bench::{fig16_scenarios, print_table, scaled, workers};
use btwc_noise::SimRng;
use btwc_sim::{offchip_probability, LifetimeConfig};

fn main() {
    println!("# Fig. 16 — bandwidth allocation vs stalling trade-offs\n");
    let num_qubits = 1000;
    let cycles = scaled(100_000);
    let sweep_cycles = scaled(50_000) as usize;
    let percentiles = [0.50, 0.75, 0.90, 0.99, 0.999, 0.9999];
    let _ = workers();
    for (p, d) in fig16_scenarios() {
        let cfg = LifetimeConfig::new(d, p).with_cycles(cycles).with_seed(0xF1616);
        let q = offchip_probability(&cfg);
        println!("## p={p:.0e}, d={d}: Clique coverage {:.3}% (q={q:.5})\n", (1.0 - q) * 100.0);
        let model = ArrivalModel::bernoulli(num_qubits, q.max(1e-6));
        let mut rng = SimRng::from_seed(0x16);
        let pts = sweep_tradeoff(&model, &mut rng, &percentiles, sweep_cycles);
        let rows: Vec<Vec<String>> = pts
            .iter()
            .map(|pt| {
                vec![
                    format!("{:.4}", pt.percentile),
                    pt.bandwidth.to_string(),
                    format!("{:.1}", pt.reduction),
                    format!("{:.2}", pt.execution_time_increase * 100.0),
                    format!("{:.2}", pt.stall_fraction * 100.0),
                ]
            })
            .collect();
        print_table(&["pctile", "bandwidth", "reduction (x)", "exec increase %", "stall %"], &rows);
        // The paper's headline: the reduction achievable at <=10% cost.
        if let Some(best) = pts
            .iter()
            .filter(|pt| pt.execution_time_increase <= 0.10)
            .max_by(|a, b| a.reduction.total_cmp(&b.reduction))
        {
            println!(
                "\n-> {:.1}x bandwidth reduction at {:.1}% execution-time increase\n",
                best.reduction,
                best.execution_time_increase * 100.0
            );
        } else {
            println!("\n-> no point within the 10% budget\n");
        }
    }
}
