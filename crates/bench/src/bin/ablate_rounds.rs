//! Ablation: Clique sticky-filter depth `k` (paper Sec. 7.3's knob —
//! "if more rounds are used in Clique, further measurement error
//! robustness can be achieved ... at limited cost").
//!
//! Sweeps `k = 1..4` and reports, per depth: on-chip coverage, the
//! measurement-fluke complex rate (meas-only noise), Clique+MWPM
//! logical error rate, and the SFQ hardware cost of the extra DFF/AND
//! stages.

use btwc_bench::{print_table, scaled, workers};
use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_sfq::{synthesize_clique, CostModel};
use btwc_sim::{logical_error_rate_parallel, DecoderKind, LifetimeConfig, LifetimeSim, ShotConfig};

fn main() {
    println!("# Ablation — sticky-filter depth k at d=9\n");
    let d = 9u16;
    let p = 8e-3;
    let cycles = scaled(100_000);
    let shots = scaled(20_000);
    let w = workers();
    let model = CostModel::default();
    let mut rows = Vec::new();
    for k in 1..=4usize {
        let cov = LifetimeSim::run_parallel(
            &LifetimeConfig::new(d, p).with_cycles(cycles).with_clique_rounds(k).with_seed(0xAB2),
            w,
        );
        let flukes = LifetimeSim::run_parallel(
            &LifetimeConfig::new(d, 0.0)
                .with_measurement_error_rate(p)
                .with_cycles(cycles)
                .with_clique_rounds(k)
                .with_seed(0xAB3),
            w,
        );
        let ler = logical_error_rate_parallel(
            &ShotConfig::new(d, p).with_shots(shots).with_clique_rounds(k).with_seed(0xAB4),
            DecoderKind::CliquePlusMwpm,
            w,
        );
        let cost =
            model.report(synthesize_clique(&SurfaceCode::new(d), StabilizerType::X, k).netlist());
        rows.push(vec![
            k.to_string(),
            format!("{:.2}", cov.coverage() * 100.0),
            format!("{:.4}", flukes.complex as f64 / flukes.cycles as f64 * 100.0),
            format!("{:.2e}", ler.rate()),
            cost.jj_count.to_string(),
            format!("{:.1}", cost.power_uw),
            format!("{:.3}", cost.latency_ns),
        ]);
        eprintln!("done: k={k}");
    }
    print_table(
        &[
            "k",
            "coverage %",
            "meas-fluke complex %",
            "Clique+MWPM LER",
            "JJs",
            "power uW",
            "latency ns",
        ],
        &rows,
    );
    println!("\n({cycles} cycles / {shots} shots per row, p={p:.0e})");
}
