//! Fig. 9: per-cycle off-chip decodes for a 1000-logical-qubit machine
//! over a 100-cycle window, under 50th- vs 99th-percentile provisioning
//! (new decodes, carryover, and stall markers).

use btwc_bandwidth::{ArrivalModel, QueueSim};
use btwc_bench::{print_table, scaled, workers};
use btwc_noise::SimRng;
use btwc_sim::{multi_qubit_trace, LifetimeConfig};

fn main() {
    println!("# Fig. 9 — off-chip decodes per cycle, 1000 logical qubits\n");
    // Like the paper's illustration: a scenario with ~95% Clique
    // coverage, i.e. ~5% of qubits need off-chip decode per cycle.
    let p = 8e-3;
    let d = 9;
    let num_qubits = 1000;
    let window = 100usize;

    // A real multi-qubit trace from the lifetime simulator (scaled-down
    // qubit count extrapolated to 1000 for tractability at BTWC_SCALE=1).
    let sim_qubits = scaled(100) as usize;
    let cfg = LifetimeConfig::new(d, p).with_cycles(window as u64 + 50).with_seed(0xF1609);
    let trace = multi_qubit_trace(&cfg, sim_qubits, workers());
    let factor = num_qubits as f64 / sim_qubits as f64;
    let demand: Vec<usize> = trace
        .iter()
        .skip(20) // let the filters fill
        .take(window)
        .map(|&c| (c as f64 * factor).round() as usize)
        .collect();
    let model = ArrivalModel::trace(demand.clone());
    let mut rng = SimRng::from_seed(1);
    let p50 = model.bandwidth_at_percentile(&mut rng, 0.50, demand.len());
    let p99 = model.bandwidth_at_percentile(&mut rng, 0.99, demand.len());
    println!("50th percentile bandwidth = {p50} decodes/cycle");
    println!("99th percentile bandwidth = {p99} decodes/cycle\n");

    for (label, bw) in [("50th", p50), ("99th", p99)] {
        println!("## Provisioned at the {label} percentile ({bw}/cycle)\n");
        let mut sim = QueueSim::new(bw);
        let mut rows = Vec::new();
        let mut stalls = 0u32;
        for (t, &arrivals) in demand.iter().enumerate() {
            let rec = sim.step(arrivals);
            stalls += u32::from(rec.stalled);
            if t < 20 || rec.stalled || rec.carryover > 0 {
                rows.push(vec![
                    t.to_string(),
                    rec.new_decodes.to_string(),
                    rec.carryover.to_string(),
                    rec.processed.to_string(),
                    if rec.stalled { "STALL".into() } else { String::new() },
                ]);
            }
        }
        print_table(&["cycle", "new", "carryover", "processed", ""], &rows);
        println!(
            "\n{stalls} stall cycles in a {}-cycle window (showing first 20 cycles + all congested cycles)\n",
            demand.len()
        );
    }
}
