//! Fig. 14: logical error rate of the MWPM baseline versus
//! Clique+baseline, for d in {3,5,7,9,11} across physical error rates.

use btwc_bench::{print_table, scaled, workers};
use btwc_sim::{logical_error_rate_parallel, DecoderKind, ShotConfig};

fn main() {
    println!("# Fig. 14 — logical error rate per shot (d noisy rounds + readout)\n");
    let distances: [u16; 5] = [3, 5, 7, 9, 11];
    let rates = [2e-3, 4e-3, 6e-3, 8e-3, 1.2e-2];
    let shots = scaled(30_000);
    let w = workers();
    let mut rows = Vec::new();
    for &d in &distances {
        for &p in &rates {
            let cfg = ShotConfig::new(d, p).with_shots(shots).with_seed(0xF1614);
            let base = logical_error_rate_parallel(&cfg, DecoderKind::MwpmOnly, w);
            let btwc = logical_error_rate_parallel(&cfg, DecoderKind::CliquePlusMwpm, w);
            rows.push(vec![
                d.to_string(),
                format!("{p:.1e}"),
                format!("{:.2e}", base.rate()),
                format!("{:.2e}", btwc.rate()),
                format!("{}", base.failures),
                format!("{}", btwc.failures),
            ]);
        }
        eprintln!("done: d={d}");
    }
    print_table(&["d", "p", "Baseline LER", "Clique+Base LER", "base fails", "btwc fails"], &rows);
    println!("\n({shots} shots per point)");
}
