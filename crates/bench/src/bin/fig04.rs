//! Fig. 4: QEC error-signature distributions (All-0s / Local-1s /
//! Complex) for the paper's six (physical rate, logical rate, distance)
//! scenarios.
//!
//! Per the paper's methodology these are *independent trials* (one
//! cycle's fresh errors, two measurement rounds, Clique classification),
//! not a decode stream. The d=81 column is the paper's own "rather
//! impractical" scenario; it gets a reduced trial budget (EXPERIMENTS.md).

use btwc_bench::{fig4_scenarios, print_table, scaled, workers};
use btwc_sim::signature_distribution_iid;

fn main() {
    println!("# Fig. 4 — syndrome distribution per scenario\n");
    let workers = workers();
    let mut rows = Vec::new();
    for (p, ler, d) in fig4_scenarios() {
        // Large distances cost more per cycle; shrink the budget so the
        // harness completes in minutes at BTWC_SCALE=1.
        let budget = match d {
            0..=15 => scaled(1_000_000),
            16..=30 => scaled(400_000),
            _ => scaled(60_000),
        };
        let label = format!("{p:.0e}/{ler} ({d})");
        let dist = signature_distribution_iid(&label, d, p, budget, 0xF1604, workers);
        rows.push(vec![
            label,
            format!("{:.2}", dist.all_zeros * 100.0),
            format!("{:.2}", dist.local_ones * 100.0),
            format!("{:.3}", dist.complex * 100.0),
            format!("{budget}"),
        ]);
        eprintln!("done: p={p:.0e} d={d}");
    }
    print_table(&["Scenario p/LER (d)", "All-0s %", "Local-1s %", "Complex %", "trials"], &rows);
}
