//! The ERSFQ cell library (paper Table 1).

/// Gate types available in the ERSFQ standard-cell library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellKind {
    /// Two-input XOR.
    Xor2,
    /// Two-input AND.
    And2,
    /// Two-input OR.
    Or2,
    /// Inverter.
    Not,
    /// D flip-flop (also used as the path-balancing register).
    Dff,
    /// Pulse splitter: one input, two outputs (SFQ nets are point to
    /// point, so all fanout is built from these).
    Split,
}

impl CellKind {
    /// All cell kinds, in Table 1 order.
    #[must_use]
    pub fn all() -> [CellKind; 6] {
        [
            CellKind::Xor2,
            CellKind::And2,
            CellKind::Or2,
            CellKind::Not,
            CellKind::Dff,
            CellKind::Split,
        ]
    }

    /// Number of logic inputs this cell consumes.
    #[must_use]
    pub fn num_inputs(self) -> usize {
        match self {
            CellKind::Xor2 | CellKind::And2 | CellKind::Or2 => 2,
            CellKind::Not | CellKind::Dff | CellKind::Split => 1,
        }
    }

    /// Number of outputs this cell produces.
    #[must_use]
    pub fn num_outputs(self) -> usize {
        match self {
            CellKind::Split => 2,
            _ => 1,
        }
    }
}

/// Physical characteristics of one cell (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// Propagation delay in picoseconds.
    pub delay_ps: f64,
    /// Cell area in square micrometers.
    pub area_um2: f64,
    /// Josephson junction count.
    pub jj_count: u32,
}

/// The ERSFQ cell library used for decoder synthesis — the exact values
/// of the paper's Table 1.
#[must_use]
pub fn cell_library(kind: CellKind) -> CellSpec {
    match kind {
        CellKind::Xor2 => CellSpec { delay_ps: 6.2, area_um2: 7000.0, jj_count: 18 },
        CellKind::And2 => CellSpec { delay_ps: 8.2, area_um2: 7000.0, jj_count: 16 },
        CellKind::Or2 => CellSpec { delay_ps: 5.4, area_um2: 7000.0, jj_count: 14 },
        CellKind::Not => CellSpec { delay_ps: 12.8, area_um2: 7000.0, jj_count: 12 },
        CellKind::Dff => CellSpec { delay_ps: 8.6, area_um2: 5600.0, jj_count: 10 },
        CellKind::Split => CellSpec { delay_ps: 7.0, area_um2: 3500.0, jj_count: 4 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_paper() {
        assert_eq!(cell_library(CellKind::Xor2).jj_count, 18);
        assert_eq!(cell_library(CellKind::And2).jj_count, 16);
        assert_eq!(cell_library(CellKind::Or2).jj_count, 14);
        assert_eq!(cell_library(CellKind::Not).jj_count, 12);
        assert_eq!(cell_library(CellKind::Dff).jj_count, 10);
        assert_eq!(cell_library(CellKind::Split).jj_count, 4);
        assert!((cell_library(CellKind::Xor2).delay_ps - 6.2).abs() < 1e-9);
        assert!((cell_library(CellKind::Split).area_um2 - 3500.0).abs() < 1e-9);
        assert!((cell_library(CellKind::Dff).area_um2 - 5600.0).abs() < 1e-9);
    }

    #[test]
    fn arity_is_consistent() {
        for kind in CellKind::all() {
            assert!(kind.num_inputs() >= 1);
            assert!(kind.num_outputs() >= 1);
        }
        assert_eq!(CellKind::Split.num_outputs(), 2);
        assert_eq!(CellKind::Xor2.num_inputs(), 2);
        assert_eq!(CellKind::Not.num_inputs(), 1);
    }
}
