//! Gate-level netlist IR with a cycle-accurate pulse simulator.

use std::collections::VecDeque;

use crate::cells::{cell_library, CellKind};

/// Identifier of a net (a point-to-point pulse wire).
pub type NetId = usize;

/// One standard cell instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gate {
    kind: CellKind,
    inputs: [NetId; 2],
    outputs: [NetId; 2],
}

impl Gate {
    pub(crate) fn from_parts(kind: CellKind, inputs: [NetId; 2], outputs: [NetId; 2]) -> Self {
        Self { kind, inputs, outputs }
    }

    /// Cell type.
    #[must_use]
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Input nets (length = `kind().num_inputs()`).
    #[must_use]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs[..self.kind.num_inputs()]
    }

    /// Output nets (length = `kind().num_outputs()`).
    #[must_use]
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs[..self.kind.num_outputs()]
    }
}

/// A feed-forward SFQ netlist.
///
/// Invariants maintained by construction: every net has exactly one
/// driver (a primary input or one gate output) and the gate graph is a
/// DAG. The SFQ-specific single-sink and equal-arrival invariants are
/// established by the [`Netlist::insert_splitters`] and
/// [`Netlist::balance_paths`] passes (see `passes.rs`).
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    num_nets: usize,
    gates: Vec<Gate>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
}

impl Netlist {
    /// An empty netlist.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn new_net(&mut self) -> NetId {
        let id = self.num_nets;
        self.num_nets += 1;
        id
    }

    /// Declares a primary input and returns its net.
    pub fn add_input(&mut self) -> NetId {
        let n = self.new_net();
        self.primary_inputs.push(n);
        n
    }

    /// Adds a two-input gate; returns the output net.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not a two-input cell or a net is out of range.
    pub fn add_gate2(&mut self, kind: CellKind, a: NetId, b: NetId) -> NetId {
        assert_eq!(kind.num_inputs(), 2, "{kind:?} is not a 2-input cell");
        assert!(a < self.num_nets && b < self.num_nets, "input net out of range");
        let out = self.new_net();
        self.gates.push(Gate { kind, inputs: [a, b], outputs: [out, usize::MAX] });
        out
    }

    /// Adds a one-input gate (NOT or DFF); returns the output net.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not a one-input, one-output cell.
    pub fn add_gate1(&mut self, kind: CellKind, a: NetId) -> NetId {
        assert_eq!(kind.num_inputs(), 1, "{kind:?} is not a 1-input cell");
        assert_eq!(kind.num_outputs(), 1, "{kind:?} is not single-output");
        assert!(a < self.num_nets, "input net out of range");
        let out = self.new_net();
        self.gates.push(Gate { kind, inputs: [a, usize::MAX], outputs: [out, usize::MAX] });
        out
    }

    /// Adds a splitter; returns its two output nets.
    ///
    /// # Panics
    ///
    /// Panics if the input net is out of range.
    pub fn add_split(&mut self, a: NetId) -> (NetId, NetId) {
        assert!(a < self.num_nets, "input net out of range");
        let o1 = self.new_net();
        let o2 = self.new_net();
        self.gates.push(Gate { kind: CellKind::Split, inputs: [a, usize::MAX], outputs: [o1, o2] });
        (o1, o2)
    }

    /// Marks a net as a primary output.
    ///
    /// # Panics
    ///
    /// Panics if the net is out of range.
    pub fn mark_output(&mut self, net: NetId) {
        assert!(net < self.num_nets, "output net out of range");
        self.primary_outputs.push(net);
    }

    /// All gates, in insertion order.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Mutable access for the rewrite passes in this crate.
    pub(crate) fn gates_mut(&mut self) -> &mut Vec<Gate> {
        &mut self.gates
    }

    /// Primary input nets in declaration order.
    #[must_use]
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Primary output nets in declaration order.
    #[must_use]
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.primary_outputs
    }

    pub(crate) fn primary_outputs_mut(&mut self) -> &mut Vec<NetId> {
        &mut self.primary_outputs
    }

    /// Total number of nets.
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.num_nets
    }

    /// Total number of gates.
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of gates of a given kind.
    #[must_use]
    pub fn count(&self, kind: CellKind) -> usize {
        self.gates.iter().filter(|g| g.kind == kind).count()
    }

    /// Total Josephson junction count (the paper's primary hardware
    /// cost metric).
    #[must_use]
    pub fn jj_count(&self) -> u64 {
        self.gates.iter().map(|g| u64::from(cell_library(g.kind).jj_count)).sum()
    }

    /// Total standard-cell area in µm².
    #[must_use]
    pub fn area_um2(&self) -> f64 {
        self.gates.iter().map(|g| cell_library(g.kind).area_um2).sum()
    }

    /// Longest input→output path delay in picoseconds, summing Table 1
    /// cell delays (the SFQ pulse wave latency through the whole
    /// pipeline).
    ///
    /// # Panics
    ///
    /// Panics if the netlist is not a DAG.
    #[must_use]
    pub fn critical_path_ps(&self) -> f64 {
        let order = self.topo_gates(false);
        let mut arrival = vec![0.0f64; self.num_nets];
        for &gi in &order {
            let g = &self.gates[gi];
            let t_in = g.inputs().iter().map(|&n| arrival[n]).fold(0.0f64, f64::max);
            let t_out = t_in + cell_library(g.kind).delay_ps;
            for &o in g.outputs() {
                arrival[o] = t_out;
            }
        }
        arrival.iter().copied().fold(0.0, f64::max)
    }

    /// Stage depth of every net: primary inputs at 0, each gate adds one
    /// stage (SFQ gates are all pulse-clocked).
    ///
    /// # Panics
    ///
    /// Panics if the netlist is not a DAG.
    #[must_use]
    pub fn net_depths(&self) -> Vec<usize> {
        self.net_depths_after(0)
    }

    /// Stage depths where the first `first_gate` gates are treated as
    /// depth-0 sources (the frozen prefix of
    /// [`Netlist::balance_paths_after`]).
    ///
    /// # Panics
    ///
    /// Panics if the netlist is not a DAG.
    #[must_use]
    pub fn net_depths_after(&self, first_gate: usize) -> Vec<usize> {
        let order = self.topo_gates(false);
        let mut depth = vec![0usize; self.num_nets];
        for &gi in &order {
            let g = &self.gates[gi];
            if gi < first_gate {
                continue; // outputs stay at depth 0
            }
            let d_in = g.inputs().iter().map(|&n| depth[n]).max().unwrap_or(0);
            for &o in g.outputs() {
                depth[o] = d_in + 1;
            }
        }
        depth
    }

    /// Topological order over gate indices. With `cut_dff` the DFF input
    /// edges are ignored (registers break the dependency), which is the
    /// order the cycle simulator uses.
    ///
    /// # Panics
    ///
    /// Panics if the (possibly DFF-cut) graph has a cycle.
    #[must_use]
    pub fn topo_gates(&self, cut_dff: bool) -> Vec<usize> {
        // driver[net] = gate index producing it (primary inputs have none).
        let mut driver = vec![usize::MAX; self.num_nets];
        for (gi, g) in self.gates.iter().enumerate() {
            for &o in g.outputs() {
                driver[o] = gi;
            }
        }
        let mut indegree = vec![0usize; self.gates.len()];
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); self.gates.len()];
        for (gi, g) in self.gates.iter().enumerate() {
            for &i in g.inputs() {
                let d = driver[i];
                if d != usize::MAX && !(cut_dff && self.gates[d].kind == CellKind::Dff) {
                    indegree[gi] += 1;
                    consumers[d].push(gi);
                }
            }
        }
        let mut queue: VecDeque<usize> =
            (0..self.gates.len()).filter(|&gi| indegree[gi] == 0).collect();
        let mut order = Vec::with_capacity(self.gates.len());
        while let Some(gi) = queue.pop_front() {
            order.push(gi);
            for &c in &consumers[gi] {
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    queue.push_back(c);
                }
            }
        }
        assert_eq!(order.len(), self.gates.len(), "netlist contains a cycle");
        order
    }

    /// Checks the SFQ single-sink invariant: every net drives at most
    /// one gate input or primary output. Established by
    /// [`Netlist::insert_splitters`].
    #[must_use]
    pub fn is_single_fanout(&self) -> bool {
        let mut sinks = vec![0usize; self.num_nets];
        for g in &self.gates {
            for &i in g.inputs() {
                sinks[i] += 1;
            }
        }
        for &o in &self.primary_outputs {
            sinks[o] += 1;
        }
        sinks.iter().all(|&s| s <= 1)
    }

    /// Checks the SFQ path-balance invariant: all inputs of every gate
    /// have equal stage depth, and all primary outputs share one depth.
    /// Established by [`Netlist::balance_paths`].
    #[must_use]
    pub fn is_path_balanced(&self) -> bool {
        self.is_path_balanced_after(0)
    }

    /// Path-balance check ignoring the frozen prefix (see
    /// [`Netlist::balance_paths_after`]).
    #[must_use]
    pub fn is_path_balanced_after(&self, first_gate: usize) -> bool {
        let depth = self.net_depths_after(first_gate);
        for (gi, g) in self.gates.iter().enumerate() {
            if gi < first_gate {
                continue;
            }
            let ins = g.inputs();
            if ins.len() == 2 && depth[ins[0]] != depth[ins[1]] {
                return false;
            }
        }
        let mut po = self.primary_outputs.iter().map(|&n| depth[n]);
        if let Some(first) = po.next() {
            if po.any(|d| d != first) {
                return false;
            }
        }
        true
    }
}

/// Cycle-accurate simulation state: one wave of pulses per
/// [`NetlistState::step`], with DFFs holding their value across cycles.
#[derive(Debug, Clone)]
pub struct NetlistState {
    values: Vec<bool>,
    /// One state bit per gate (only DFF entries are used).
    dff: Vec<bool>,
    order: Vec<usize>,
}

impl NetlistState {
    /// Fresh all-zero state for `netlist`.
    #[must_use]
    pub fn new(netlist: &Netlist) -> Self {
        Self {
            values: vec![false; netlist.num_nets()],
            dff: vec![false; netlist.num_gates()],
            order: netlist.topo_gates(true),
        }
    }

    /// Advances one cycle: drives the primary inputs, propagates the
    /// wave, updates the DFFs, and returns the primary output values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of primary
    /// inputs.
    pub fn step(&mut self, netlist: &Netlist, inputs: &[bool]) -> Vec<bool> {
        self.wave(netlist, inputs, 0)
    }

    /// One propagation wave; DFFs with gate index `< frozen_gates` keep
    /// their stored state instead of capturing their input — the seam
    /// [`NetlistState::step_round`] uses to flush the balanced decision
    /// cone without advancing the sticky-filter pipeline.
    fn wave(&mut self, netlist: &Netlist, inputs: &[bool], frozen_gates: usize) -> Vec<bool> {
        assert_eq!(inputs.len(), netlist.primary_inputs().len(), "primary input width mismatch");
        for (&net, &v) in netlist.primary_inputs().iter().zip(inputs) {
            self.values[net] = v;
        }
        // DFF outputs present their stored state at the start of the wave.
        for (gi, g) in netlist.gates().iter().enumerate() {
            if g.kind() == CellKind::Dff {
                self.values[g.outputs()[0]] = self.dff[gi];
            }
        }
        for &gi in &self.order {
            let g = &netlist.gates()[gi];
            match g.kind() {
                CellKind::Dff => {} // handled above / below
                CellKind::Xor2 => {
                    let v = self.values[g.inputs()[0]] ^ self.values[g.inputs()[1]];
                    self.values[g.outputs()[0]] = v;
                }
                CellKind::And2 => {
                    let v = self.values[g.inputs()[0]] & self.values[g.inputs()[1]];
                    self.values[g.outputs()[0]] = v;
                }
                CellKind::Or2 => {
                    let v = self.values[g.inputs()[0]] | self.values[g.inputs()[1]];
                    self.values[g.outputs()[0]] = v;
                }
                CellKind::Not => {
                    self.values[g.outputs()[0]] = !self.values[g.inputs()[0]];
                }
                CellKind::Split => {
                    let v = self.values[g.inputs()[0]];
                    self.values[g.outputs()[0]] = v;
                    self.values[g.outputs()[1]] = v;
                }
            }
        }
        // Capture DFF inputs for the next cycle (frozen DFFs hold).
        for (gi, g) in netlist.gates().iter().enumerate().skip(frozen_gates) {
            if g.kind() == CellKind::Dff {
                self.dff[gi] = self.values[g.inputs()[0]];
            }
        }
        netlist.primary_outputs().iter().map(|&n| self.values[n]).collect()
    }

    /// Holds `inputs` constant for `cycles` steps and returns the final
    /// outputs — used to read the settled value of a pipelined netlist.
    pub fn settle(&mut self, netlist: &Netlist, inputs: &[bool], cycles: usize) -> Vec<bool> {
        let mut out = Vec::new();
        for _ in 0..cycles.max(1) {
            out = self.step(netlist, inputs);
        }
        out
    }

    /// Streams one measurement round through a synthesized pipeline
    /// whose first `frozen_gates` gates form an intentionally skewed
    /// temporal prefix (the sticky filter of
    /// [`crate::synthesize_clique`], via
    /// [`crate::CliqueSynthesis::filter_gate_count`]).
    ///
    /// The path-balancing DFFs the legalization passes inserted into
    /// the downstream decision cone are first flushed with the filter
    /// state held frozen (so the cone fills with *this* round's filter
    /// verdict, computed against the rounds already captured), then one
    /// ordinary [`NetlistState::step`] reads the settled decision and
    /// captures the filter DFFs, advancing the sticky window by exactly
    /// this round. The returned outputs are round-for-round comparable
    /// with a behavioral frontend consuming the same stream.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of primary
    /// inputs.
    pub fn step_round(
        &mut self,
        netlist: &Netlist,
        inputs: &[bool],
        frozen_gates: usize,
    ) -> Vec<bool> {
        // No padding chain is longer than the deepest net.
        let flush = netlist.net_depths().iter().max().copied().unwrap_or(0);
        for _ in 0..flush {
            self.wave(netlist, inputs, frozen_gates);
        }
        // Combinational evaluation still sees the pre-capture filter
        // state, so this step's outputs equal the settled decision.
        self.step(netlist, inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_and_gate_evaluation() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let x = nl.add_gate2(CellKind::Xor2, a, b);
        let y = nl.add_gate2(CellKind::And2, a, b);
        nl.mark_output(x);
        nl.mark_output(y);
        let mut st = NetlistState::new(&nl);
        assert_eq!(st.step(&nl, &[true, false]), vec![true, false]);
        assert_eq!(st.step(&nl, &[true, true]), vec![false, true]);
        assert_eq!(st.step(&nl, &[false, false]), vec![false, false]);
    }

    #[test]
    fn not_and_or_evaluation() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let na = nl.add_gate1(CellKind::Not, a);
        let o = nl.add_gate2(CellKind::Or2, na, b);
        nl.mark_output(o);
        let mut st = NetlistState::new(&nl);
        assert_eq!(st.step(&nl, &[false, false]), vec![true]);
        assert_eq!(st.step(&nl, &[true, false]), vec![false]);
        assert_eq!(st.step(&nl, &[true, true]), vec![true]);
    }

    #[test]
    fn dff_delays_by_one_cycle() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let d = nl.add_gate1(CellKind::Dff, a);
        nl.mark_output(d);
        let mut st = NetlistState::new(&nl);
        assert_eq!(st.step(&nl, &[true]), vec![false], "state starts at 0");
        assert_eq!(st.step(&nl, &[false]), vec![true], "sees last cycle's input");
        assert_eq!(st.step(&nl, &[false]), vec![false]);
    }

    #[test]
    fn dff_chain_implements_two_round_and() {
        // filtered = a AND delayed(a): the paper's Fig. 7 sticky filter.
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let (a1, a2) = nl.add_split(a);
        let d = nl.add_gate1(CellKind::Dff, a1);
        let f = nl.add_gate2(CellKind::And2, a2, d);
        nl.mark_output(f);
        let mut st = NetlistState::new(&nl);
        assert_eq!(st.step(&nl, &[true]), vec![false], "first lit round filtered");
        assert_eq!(st.step(&nl, &[true]), vec![true], "second lit round accepted");
        assert_eq!(st.step(&nl, &[false]), vec![false]);
    }

    #[test]
    fn split_duplicates_pulse() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let (o1, o2) = nl.add_split(a);
        nl.mark_output(o1);
        nl.mark_output(o2);
        let mut st = NetlistState::new(&nl);
        assert_eq!(st.step(&nl, &[true]), vec![true, true]);
    }

    #[test]
    fn jj_and_area_accounting() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let x = nl.add_gate2(CellKind::Xor2, a, b);
        let n = nl.add_gate1(CellKind::Not, x);
        nl.mark_output(n);
        assert_eq!(nl.jj_count(), 18 + 12);
        assert!((nl.area_um2() - 14_000.0).abs() < 1e-9);
        assert_eq!(nl.count(CellKind::Xor2), 1);
        assert_eq!(nl.num_gates(), 2);
    }

    #[test]
    fn critical_path_sums_delays() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let x = nl.add_gate2(CellKind::Xor2, a, b); // 6.2
        let n = nl.add_gate1(CellKind::Not, x); // 12.8
        let o = nl.add_gate2(CellKind::And2, n, b); // 8.2
        nl.mark_output(o);
        assert!((nl.critical_path_ps() - (6.2 + 12.8 + 8.2)).abs() < 1e-9);
    }

    #[test]
    fn fanout_invariant_detects_shared_net() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let _x = nl.add_gate2(CellKind::Xor2, a, b);
        let _y = nl.add_gate2(CellKind::And2, a, b); // a and b reused!
        assert!(!nl.is_single_fanout());
    }

    #[test]
    fn depth_and_balance_checks() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let x = nl.add_gate2(CellKind::Xor2, a, b); // depth 1
        let o = nl.add_gate2(CellKind::And2, x, b); // inputs at depth 1 and 0
        nl.mark_output(o);
        assert!(!nl.is_path_balanced());
        let depths = nl.net_depths();
        assert_eq!(depths[x], 1);
        assert_eq!(depths[o], 2);
    }
}
