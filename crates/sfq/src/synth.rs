//! Synthesis of the Clique decoder into the ERSFQ cell library.

use btwc_lattice::{StabilizerType, SurfaceCode};

use crate::cells::CellKind;
use crate::netlist::{NetId, Netlist};

/// A synthesized Clique decoder netlist plus its I/O map.
///
/// Primary inputs are the raw per-ancilla syndrome bits (one per
/// ancilla, in [`SurfaceCode::ancillas`] order). Primary outputs are the
/// global COMPLEX flag followed by one correction signal per covered
/// data qubit.
#[derive(Debug, Clone)]
pub struct CliqueSynthesis {
    netlist: Netlist,
    rounds: usize,
    num_ancillas: usize,
    complex_po: usize,
    correction_pos: Vec<(usize, usize)>,
    filter_gates: usize,
}

impl CliqueSynthesis {
    /// The synthesized netlist (splitters inserted, paths balanced).
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Sticky-filter depth `k` baked into the hardware.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Number of ancilla inputs.
    #[must_use]
    pub fn num_ancillas(&self) -> usize {
        self.num_ancillas
    }

    /// Index of the COMPLEX flag within the primary outputs.
    #[must_use]
    pub fn complex_output_index(&self) -> usize {
        self.complex_po
    }

    /// `(data qubit, primary output index)` pairs for the correction
    /// signals, sorted by data qubit.
    #[must_use]
    pub fn correction_outputs(&self) -> &[(usize, usize)] {
        &self.correction_pos
    }

    /// Number of leading gates forming the (deliberately unbalanced)
    /// sticky-filter stage; path balance holds for everything after.
    #[must_use]
    pub fn filter_gate_count(&self) -> usize {
        self.filter_gates
    }
}

/// Synthesizes the Clique decoder for one stabilizer type of `code`
/// with a `rounds`-deep sticky measurement filter (paper Figs. 5–7),
/// then runs the SFQ legalization passes (splitter trees, full path
/// balancing).
///
/// # Panics
///
/// Panics if `rounds == 0`.
#[must_use]
pub fn synthesize_clique(code: &SurfaceCode, ty: StabilizerType, rounds: usize) -> CliqueSynthesis {
    assert!(rounds >= 1, "sticky filter needs at least one round");
    let graph = code.detector_graph(ty);
    let n = graph.num_nodes();
    let mut nl = Netlist::new();

    // 1. Raw syndrome inputs, then the Fig. 7 sticky filter:
    //    filtered = AND(m, DFF(m), DFF(DFF(m)), ...).
    let raw: Vec<NetId> = (0..n).map(|_| nl.add_input()).collect();
    let filtered: Vec<NetId> = raw
        .iter()
        .map(|&m| {
            let mut taps = vec![m];
            let mut prev = m;
            for _ in 1..rounds {
                prev = nl.add_gate1(CellKind::Dff, prev);
                taps.push(prev);
            }
            reduce_tree(&mut nl, CellKind::And2, &taps)
        })
        .collect();
    // Gates so far implement the intentionally skewed temporal filter;
    // they are frozen during path balancing (their skew IS the function).
    let filter_gates = nl.num_gates();

    // 2. Per-clique decision logic (Fig. 6): parity of the same-type
    //    neighborhood, the NOT, and the active-AND; boundary cliques get
    //    the private-qubit escape (only lit neighbors force complexity).
    let mut complex_flags = Vec::with_capacity(n);
    let mut any_neighbor: Vec<Option<NetId>> = vec![None; n];
    for a in 0..n {
        let neighbors: Vec<NetId> =
            graph.ancilla_neighbors(a).iter().map(|&(b, _)| filtered[b]).collect();
        let parity = reduce_tree(&mut nl, CellKind::Xor2, &neighbors);
        let even = nl.add_gate1(CellKind::Not, parity);
        let base = nl.add_gate2(CellKind::And2, filtered[a], even);
        let has_private = !graph.private_qubits(a).is_empty();
        let flag = if has_private {
            let any = reduce_tree(&mut nl, CellKind::Or2, &neighbors);
            any_neighbor[a] = Some(any);
            nl.add_gate2(CellKind::And2, base, any)
        } else {
            base
        };
        complex_flags.push(flag);
    }
    let complex = reduce_tree(&mut nl, CellKind::Or2, &complex_flags);
    nl.mark_output(complex);
    let complex_po = 0;

    // 3. Correction cones (Fig. 5 pseudocode): one AND per shared data
    //    qubit; for boundary ancillas one AND(a, NOR(neighbors)) on the
    //    designated private qubit.
    let mut correction_pos = Vec::new();
    let mut edges: Vec<(usize, usize, usize)> = graph
        .edges()
        .iter()
        .filter_map(|e| match e.b {
            btwc_lattice::NodeRef::Ancilla(b) => Some((e.qubit, e.a, b)),
            btwc_lattice::NodeRef::Boundary => None,
        })
        .collect();
    edges.sort_unstable();
    for (qubit, a, b) in edges {
        let corr = nl.add_gate2(CellKind::And2, filtered[a], filtered[b]);
        correction_pos.push((qubit, nl.primary_outputs().len()));
        nl.mark_output(corr);
    }
    for a in 0..n {
        let Some(&qubit) = graph.private_qubits(a).iter().min() else {
            continue;
        };
        let any = any_neighbor[a].expect("private cliques computed their OR above");
        let none = nl.add_gate1(CellKind::Not, any);
        let corr = nl.add_gate2(CellKind::And2, filtered[a], none);
        correction_pos.push((qubit, nl.primary_outputs().len()));
        nl.mark_output(corr);
    }
    correction_pos.sort_unstable();

    // 4. SFQ legalization: splitter trees everywhere, path balancing on
    //    the decision cone (the filter's deliberate skew is preserved).
    nl.insert_splitters();
    nl.balance_paths_after(filter_gates);
    debug_assert!(nl.is_single_fanout());
    debug_assert!(nl.is_path_balanced_after(filter_gates));

    CliqueSynthesis {
        netlist: nl,
        rounds,
        num_ancillas: n,
        complex_po,
        correction_pos,
        filter_gates,
    }
}

/// Balanced binary reduction over `nets` with two-input `kind` cells.
fn reduce_tree(nl: &mut Netlist, kind: CellKind, nets: &[NetId]) -> NetId {
    assert!(!nets.is_empty(), "cannot reduce an empty net list");
    let mut layer: Vec<NetId> = nets.to_vec();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            match *pair {
                [a, b] => next.push(nl.add_gate2(kind, a, b)),
                [a] => next.push(a),
                _ => unreachable!("chunks(2) yields 1..=2 items"),
            }
        }
        layer = next;
    }
    layer[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistState;
    use btwc_clique::{CliqueDecision, CliqueDecoder};
    use btwc_noise::SimRng;
    use btwc_syndrome::Syndrome;

    fn settle_outputs(synth: &CliqueSynthesis, inputs: &[bool]) -> Vec<bool> {
        let nl = synth.netlist();
        let depth = *nl.net_depths().iter().max().unwrap();
        let mut st = NetlistState::new(nl);
        st.settle(nl, inputs, depth + synth.rounds() + 2)
    }

    #[test]
    fn synthesis_has_expected_io() {
        let code = SurfaceCode::new(5);
        let synth = synthesize_clique(&code, StabilizerType::X, 2);
        assert_eq!(synth.num_ancillas(), 12);
        assert_eq!(synth.rounds(), 2);
        assert_eq!(synth.netlist().primary_inputs().len(), 12);
        // COMPLEX + one output per covered data qubit correction cone.
        assert!(synth.netlist().primary_outputs().len() > 12);
        assert!(synth.netlist().is_single_fanout());
        assert!(synth.netlist().is_path_balanced_after(synth.filter_gate_count()));
    }

    #[test]
    fn netlist_matches_behavioral_decoder_on_random_syndromes() {
        // The load-bearing hardware/software equivalence check (k = 1:
        // pure decision logic, no temporal filter).
        let code = SurfaceCode::new(5);
        let synth = synthesize_clique(&code, StabilizerType::X, 1);
        let decoder = CliqueDecoder::new(&code, StabilizerType::X);
        let n = synth.num_ancillas();
        let mut rng = SimRng::from_seed(0x5F0);
        for trial in 0..400 {
            let bits: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.15)).collect();
            let syndrome = Syndrome::from_bits(bits.clone());
            let outs = settle_outputs(&synth, &bits);
            let hw_complex = outs[synth.complex_output_index()];
            match decoder.decode(&syndrome) {
                CliqueDecision::Complex => {
                    assert!(hw_complex, "trial {trial}: hw missed complex on {syndrome}");
                }
                CliqueDecision::AllZeros => {
                    assert!(!hw_complex);
                    for &(q, po) in synth.correction_outputs() {
                        assert!(!outs[po], "trial {trial}: spurious correction on {q}");
                    }
                }
                CliqueDecision::Trivial(c) => {
                    assert!(!hw_complex, "trial {trial}: hw false complex on {syndrome}");
                    for &(q, po) in synth.correction_outputs() {
                        assert_eq!(
                            outs[po],
                            c.qubits().contains(&q),
                            "trial {trial}: correction mismatch on qubit {q} for {syndrome}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sticky_filter_suppresses_one_round_flip_in_hardware() {
        let code = SurfaceCode::new(5);
        let synth = synthesize_clique(&code, StabilizerType::X, 2);
        let nl = synth.netlist();
        let n = synth.num_ancillas();
        // Find an interior ancilla: lone lit interior ancilla => complex.
        let graph = code.detector_graph(StabilizerType::X);
        let interior = (0..n).find(|&a| graph.private_qubits(a).is_empty()).unwrap();
        let mut lit = vec![false; n];
        lit[interior] = true;
        let quiet = vec![false; n];
        let window = *nl.net_depths().iter().max().unwrap() + 4;

        // One-round flip: no COMPLEX pulse anywhere in the window.
        let mut st = NetlistState::new(nl);
        let mut saw_complex = false;
        st.step(nl, &quiet);
        st.step(nl, &lit);
        for _ in 0..window {
            let outs = st.step(nl, &quiet);
            saw_complex |= outs[synth.complex_output_index()];
        }
        assert!(!saw_complex, "single-round measurement flip must be filtered");

        // Two-round flip: the COMPLEX flag must fire.
        let mut st = NetlistState::new(nl);
        let mut saw_complex = false;
        st.step(nl, &quiet);
        st.step(nl, &lit);
        st.step(nl, &lit);
        for _ in 0..window {
            let outs = st.step(nl, &quiet);
            saw_complex |= outs[synth.complex_output_index()];
        }
        assert!(saw_complex, "two-round sticky flip must reach the complex flag");
    }

    #[test]
    fn gate_count_grows_quadratically_with_distance() {
        let jj3 =
            synthesize_clique(&SurfaceCode::new(3), StabilizerType::X, 2).netlist().jj_count();
        let jj9 =
            synthesize_clique(&SurfaceCode::new(9), StabilizerType::X, 2).netlist().jj_count();
        // Cliques scale with d^2; ratio (81-1)/(9-1) = 10x, modulo trees.
        let ratio = jj9 as f64 / jj3 as f64;
        assert!((5.0..25.0).contains(&ratio), "jj ratio {ratio}");
    }

    #[test]
    fn more_rounds_cost_more_hardware() {
        let code = SurfaceCode::new(5);
        let k2 = synthesize_clique(&code, StabilizerType::X, 2).netlist().jj_count();
        let k3 = synthesize_clique(&code, StabilizerType::X, 3).netlist().jj_count();
        assert!(k3 > k2, "additional measurement rounds add DFF/AND cost");
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        let _ = synthesize_clique(&SurfaceCode::new(3), StabilizerType::X, 0);
    }
}
