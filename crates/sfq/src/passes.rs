//! SFQ-specific netlist rewrite passes: splitter insertion and full
//! path balancing (the constraints SFQMap enforces, Sec. 6.2).

use crate::cells::CellKind;
use crate::netlist::{Gate, NetId, Netlist};

impl Netlist {
    /// Rewrites the netlist so every net drives exactly one sink,
    /// materializing fanout as binary [`CellKind::Split`] trees. SFQ
    /// pulses are consumed by the gate they arrive at, so electrical
    /// fanout does not exist; splitter junction cost is real cost.
    ///
    /// Idempotent: running twice inserts nothing new.
    pub fn insert_splitters(&mut self) {
        // Collect sink slots per net: (gate index, input slot) plus
        // primary-output positions encoded as gate index usize::MAX.
        loop {
            let mut sinks: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.num_nets()];
            for (gi, g) in self.gates().iter().enumerate() {
                for (slot, &i) in g.inputs().iter().enumerate() {
                    sinks[i].push((gi, slot));
                }
            }
            for (pi, &o) in self.primary_outputs().iter().enumerate() {
                sinks[o].push((usize::MAX, pi));
            }
            let Some(net) = (0..self.num_nets()).find(|&n| sinks[n].len() > 1) else {
                return;
            };
            // Build a splitter tree with enough leaves for all sinks.
            let consumers = sinks[net].clone();
            let mut leaves = vec![net];
            while leaves.len() < consumers.len() {
                let src = leaves.remove(0);
                let (a, b) = self.add_split(src);
                leaves.push(a);
                leaves.push(b);
            }
            for ((gi, slot), leaf) in consumers.into_iter().zip(leaves) {
                if gi == usize::MAX {
                    self.primary_outputs_mut()[slot] = leaf;
                } else {
                    rewire_input(&mut self.gates_mut()[gi], slot, leaf);
                }
            }
        }
    }

    /// Inserts DFF chains so that both inputs of every two-input gate
    /// arrive at the same stage depth, and all primary outputs share one
    /// depth — the full path balancing SFQ logic requires.
    ///
    /// Run after [`Netlist::insert_splitters`]; panics if a net still
    /// has multiple sinks (a DFF inserted into a shared net would
    /// corrupt the other consumers).
    ///
    /// # Panics
    ///
    /// Panics if the single-fanout invariant does not hold.
    pub fn balance_paths(&mut self) {
        self.balance_paths_after(0);
    }

    /// Like [`Netlist::balance_paths`] but leaves the first
    /// `first_gate` gates untouched and treats their outputs as depth-0
    /// sources. This is how intentionally skewed temporal structures —
    /// the Fig. 7 sticky filter compares a signal against its own
    /// delayed copy — are excluded from balancing while the downstream
    /// decision cone is fully balanced.
    ///
    /// # Panics
    ///
    /// Panics if the single-fanout invariant does not hold.
    pub fn balance_paths_after(&mut self, first_gate: usize) {
        assert!(
            self.is_single_fanout(),
            "balance_paths requires single fanout; run insert_splitters first"
        );
        // Process gates in topological order, computing depths and
        // padding shallow inputs.
        let order = self.topo_gates(false);
        let mut depth = vec![0usize; self.num_nets()];
        for gi in order {
            if gi < first_gate {
                // Frozen prefix: outputs are depth-0 sources.
                continue;
            }
            let g = self.gates()[gi];
            if g.kind().num_inputs() == 2 {
                let (a, b) = (g.inputs()[0], g.inputs()[1]);
                let (da, db) = (depth[a], depth[b]);
                if da != db {
                    let (shallow_slot, shallow_net, diff) =
                        if da < db { (0, a, db - da) } else { (1, b, da - db) };
                    let padded = self.pad_with_dffs(shallow_net, diff, &mut depth);
                    rewire_input(&mut self.gates_mut()[gi], shallow_slot, padded);
                }
            }
            let g = self.gates()[gi];
            let d_in = g.inputs().iter().map(|&n| depth[n]).max().unwrap_or(0);
            for &o in g.outputs() {
                depth[o] = d_in + 1;
            }
        }
        // Align all primary outputs to the deepest one.
        let max_po = self.primary_outputs().iter().map(|&n| depth[n]).max().unwrap_or(0);
        for pi in 0..self.primary_outputs().len() {
            let net = self.primary_outputs()[pi];
            let diff = max_po - depth[net];
            if diff > 0 {
                let padded = self.pad_with_dffs(net, diff, &mut depth);
                self.primary_outputs_mut()[pi] = padded;
            }
        }
    }

    fn pad_with_dffs(&mut self, mut net: NetId, count: usize, depth: &mut Vec<usize>) -> NetId {
        for _ in 0..count {
            let d = depth[net];
            net = self.add_gate1(CellKind::Dff, net);
            depth.push(0); // grown nets: output of the new DFF
            depth[net] = d + 1;
        }
        net
    }
}

fn rewire_input(gate: &mut Gate, slot: usize, new_net: NetId) {
    // Gate stores inputs in a fixed array; rebuild it.
    let kind = gate.kind();
    let mut ins: Vec<NetId> = gate.inputs().to_vec();
    ins[slot] = new_net;
    let outs: Vec<NetId> = gate.outputs().to_vec();
    *gate = Gate::raw(kind, &ins, &outs);
}

impl Gate {
    /// Crate-internal constructor used by the rewrite passes.
    pub(crate) fn raw(kind: CellKind, inputs: &[NetId], outputs: &[NetId]) -> Self {
        let mut ins = [usize::MAX; 2];
        let mut outs = [usize::MAX; 2];
        for (i, &n) in inputs.iter().enumerate() {
            ins[i] = n;
        }
        for (i, &n) in outputs.iter().enumerate() {
            outs[i] = n;
        }
        Self::from_parts(kind, ins, outs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistState;

    fn sample_unbalanced() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let x = nl.add_gate2(CellKind::Xor2, a, b);
        // `b` is reused (fanout 2) and the AND has skewed input depths.
        let o = nl.add_gate2(CellKind::And2, x, b);
        nl.mark_output(o);
        nl
    }

    #[test]
    fn splitter_pass_establishes_single_fanout() {
        let mut nl = sample_unbalanced();
        assert!(!nl.is_single_fanout());
        nl.insert_splitters();
        assert!(nl.is_single_fanout());
        assert!(nl.count(CellKind::Split) >= 1);
    }

    #[test]
    fn splitter_pass_is_idempotent() {
        let mut nl = sample_unbalanced();
        nl.insert_splitters();
        let before = nl.num_gates();
        nl.insert_splitters();
        assert_eq!(nl.num_gates(), before);
    }

    #[test]
    fn balance_pass_establishes_path_balance() {
        let mut nl = sample_unbalanced();
        nl.insert_splitters();
        assert!(!nl.is_path_balanced());
        nl.balance_paths();
        assert!(nl.is_path_balanced());
        assert!(nl.count(CellKind::Dff) >= 1, "padding DFFs inserted");
    }

    #[test]
    fn passes_preserve_function_modulo_latency() {
        // The padded pipeline must compute the same function once settled.
        let cases = [[false, false], [false, true], [true, false], [true, true]];
        let mut reference = sample_unbalanced();
        let mut transformed = sample_unbalanced();
        transformed.insert_splitters();
        transformed.balance_paths();
        let depth = *transformed.net_depths().iter().max().unwrap();
        for ins in cases {
            let mut ref_state = NetlistState::new(&reference);
            let expect = ref_state.settle(&reference, &ins, 4);
            let mut st = NetlistState::new(&transformed);
            let got = st.settle(&transformed, &ins, depth + 2);
            assert_eq!(got, expect, "inputs {ins:?}");
        }
        // keep `reference` mutable-borrow-free usage consistent
        let _ = &mut reference;
    }

    #[test]
    fn high_fanout_builds_a_tree() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        for _ in 0..5 {
            let g = nl.add_gate1(CellKind::Not, a);
            nl.mark_output(g);
        }
        nl.insert_splitters();
        assert!(nl.is_single_fanout());
        // 5 consumers need 4 splitters.
        assert_eq!(nl.count(CellKind::Split), 4);
    }

    #[test]
    fn primary_output_fanout_is_also_split() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        nl.mark_output(a);
        nl.mark_output(a);
        nl.insert_splitters();
        assert!(nl.is_single_fanout());
    }
}
