//! ERSFQ hardware model of the Clique decoder.
//!
//! The paper implements Clique in Single Flux Quantum logic for the 4 K
//! cryogenic stage (Sec. 6.2). This crate reproduces that flow end to
//! end, in software:
//!
//! * [`CellKind`]/[`CellSpec`] — the ERSFQ cell library of Table 1
//!   (delay, area, Josephson-junction count per gate);
//! * [`Netlist`] — a gate-level IR with a cycle-accurate simulator
//!   (every SFQ gate is pulse-clocked, so the netlist is effectively
//!   fully pipelined);
//! * synthesis passes — [`Netlist::insert_splitters`] (SFQ nets drive
//!   exactly one sink; fanout needs explicit splitter trees) and
//!   [`Netlist::balance_paths`] (SFQ requires every input of every gate
//!   to arrive on the same wave, so shorter paths get DFF chains);
//! * [`synthesize_clique`] — the Clique decision + correction logic of
//!   paper Figs. 5–7 compiled to gates, with the `k`-round sticky filter;
//! * [`CostReport`] — JJ count, area, power and latency (the Fig. 15
//!   quantities), with the NISQ+ comparison anchors from Sec. 7.4.
//!
//! The synthesized netlist is *property-tested for functional
//! equivalence* against the behavioral `btwc_clique::CliqueDecoder`:
//! the hardware and the simulator cannot drift apart.
//!
//! # Example
//!
//! ```
//! use btwc_lattice::{StabilizerType, SurfaceCode};
//! use btwc_sfq::{synthesize_clique, CostModel};
//!
//! let code = SurfaceCode::new(5);
//! let synth = synthesize_clique(&code, StabilizerType::X, 2);
//! let report = CostModel::default().report(synth.netlist());
//! assert!(report.jj_count > 0);
//! assert!(report.latency_ns > 0.0 && report.latency_ns < 1.0);
//! ```

mod cells;
mod cost;
mod netlist;
mod passes;
mod synth;
mod verilog;

pub use cells::{cell_library, CellKind, CellSpec};
pub use cost::{nisq_plus_anchor, CostModel, CostReport, NisqPlusAnchor};
pub use netlist::{Gate, NetId, Netlist, NetlistState};
pub use synth::{synthesize_clique, CliqueSynthesis};
pub use verilog::to_verilog;
