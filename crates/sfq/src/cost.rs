//! Power / area / latency reporting (paper Fig. 15) and the NISQ+
//! comparison anchors (Sec. 7.4).

use crate::netlist::Netlist;

/// Converts netlist statistics into the physical quantities of Fig. 15.
///
/// Latency and area follow directly from the Table 1 cell library. The
/// ERSFQ power model is `P = N_JJ · p_jj`, with `p_jj` the effective
/// per-junction power (bias-network plus switching) **calibrated** so the
/// d = 3…21 sweep lands in the paper's reported 10–500 µW envelope; the
/// calibration is recorded in EXPERIMENTS.md. The routed-area factor
/// similarly accounts for wiring/bias overhead on top of raw cell area.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Effective power per Josephson junction, in µW.
    pub uw_per_jj: f64,
    /// Multiplier from summed cell area to routed chip area.
    pub routing_factor: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibration: a d=9 Clique netlist has ~25k JJs and the paper
        // places it near 10^2 µW; 0.004 µW/JJ puts d=3 at ~10 µW and
        // d=21 inside the quoted 500 µW budget.
        Self { uw_per_jj: 0.004, routing_factor: 1.5 }
    }
}

/// The Fig. 15 quantities for one synthesized decoder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// Total Josephson junctions.
    pub jj_count: u64,
    /// Gate count (cells of all kinds).
    pub gate_count: usize,
    /// Estimated power per logical qubit, µW.
    pub power_uw: f64,
    /// Routed area per logical qubit, mm².
    pub area_mm2: f64,
    /// Input-to-output pulse latency, ns.
    pub latency_ns: f64,
}

impl CostModel {
    /// Produces the cost report for a synthesized netlist.
    #[must_use]
    pub fn report(&self, netlist: &Netlist) -> CostReport {
        let jj_count = netlist.jj_count();
        CostReport {
            jj_count,
            gate_count: netlist.num_gates(),
            power_uw: jj_count as f64 * self.uw_per_jj,
            area_mm2: netlist.area_um2() * self.routing_factor / 1e6,
            latency_ns: netlist.critical_path_ps() / 1e3,
        }
    }
}

/// Published NISQ+ costs relative to Clique at the paper's comparison
/// point (code distance 9, Sec. 7.4). The paper compares against
/// NISQ+'s published numbers rather than re-implementing it; we encode
/// the same anchors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NisqPlusAnchor {
    /// NISQ+ power / Clique power at d = 9.
    pub power_ratio: f64,
    /// NISQ+ area / Clique area at d = 9.
    pub area_ratio: f64,
    /// NISQ+ average latency / Clique latency at d = 9.
    pub latency_ratio: f64,
    /// Extra multiplicative latency factor in NISQ+'s worst-case decode.
    pub worst_case_latency_factor: f64,
}

/// The Sec. 7.4 anchors: 37× power, 25× area, 15× average latency, and
/// an additional 6× in the worst case.
#[must_use]
pub fn nisq_plus_anchor() -> NisqPlusAnchor {
    NisqPlusAnchor {
        power_ratio: 37.0,
        area_ratio: 25.0,
        latency_ratio: 15.0,
        worst_case_latency_factor: 6.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::synthesize_clique;
    use btwc_lattice::{StabilizerType, SurfaceCode};

    #[test]
    fn d9_power_is_near_paper_envelope() {
        let synth = synthesize_clique(&SurfaceCode::new(9), StabilizerType::X, 2);
        let report = CostModel::default().report(synth.netlist());
        assert!(
            (20.0..300.0).contains(&report.power_uw),
            "d=9 power {} µW out of plausible envelope",
            report.power_uw
        );
    }

    #[test]
    fn power_sweep_spans_the_papers_range() {
        // Paper: 10 µW (d=3) to 500 µW (d=21).
        let model = CostModel::default();
        let p3 = model
            .report(synthesize_clique(&SurfaceCode::new(3), StabilizerType::X, 2).netlist())
            .power_uw;
        let p21 = model
            .report(synthesize_clique(&SurfaceCode::new(21), StabilizerType::X, 2).netlist())
            .power_uw;
        assert!(p3 < 30.0, "d=3 power {p3} µW");
        assert!(p21 > p3 * 10.0, "power must grow strongly with distance");
        assert!(p21 < 2000.0, "d=21 power {p21} µW");
    }

    #[test]
    fn latency_is_sub_nanosecond_and_stable() {
        // Paper: 0.1–0.3 ns, nearly flat across scenarios.
        let model = CostModel::default();
        for d in [3u16, 9, 15, 21] {
            let r = model
                .report(synthesize_clique(&SurfaceCode::new(d), StabilizerType::X, 2).netlist());
            assert!((0.02..0.6).contains(&r.latency_ns), "d={d} latency {} ns", r.latency_ns);
        }
    }

    #[test]
    fn area_stays_under_paper_budget() {
        // Paper: under 100 mm² per logical qubit at d=21.
        let r = CostModel::default()
            .report(synthesize_clique(&SurfaceCode::new(21), StabilizerType::X, 2).netlist());
        assert!(r.area_mm2 < 100.0, "d=21 area {} mm²", r.area_mm2);
        assert!(r.area_mm2 > 0.0);
    }

    #[test]
    fn refrigerator_budget_supports_thousands_of_qubits() {
        // Paper: ~1 W at 4 K supports ≈2000 logical qubits at d=21.
        let r = CostModel::default()
            .report(synthesize_clique(&SurfaceCode::new(21), StabilizerType::X, 2).netlist());
        let qubits = 1e6 / r.power_uw; // 1 W in µW
        assert!(qubits > 500.0, "only {qubits} qubits fit the 1 W budget");
    }

    #[test]
    fn anchors_match_section_7_4() {
        let a = nisq_plus_anchor();
        assert_eq!(a.power_ratio, 37.0);
        assert_eq!(a.area_ratio, 25.0);
        assert_eq!(a.latency_ratio, 15.0);
        assert_eq!(a.worst_case_latency_factor, 6.0);
    }
}
