//! Property-based hardware/software equivalence: the synthesized SFQ
//! netlist computes exactly the behavioral Clique function on arbitrary
//! syndrome bit patterns.

use btwc_clique::{CliqueDecision, CliqueDecoder};
use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_sfq::{synthesize_clique, NetlistState};
use btwc_syndrome::Syndrome;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn netlist_equals_behavioral_decoder(
        d in prop_oneof![Just(3u16), Just(5)],
        bits in proptest::collection::vec(proptest::bool::weighted(0.2), 60),
    ) {
        let code = SurfaceCode::new(d);
        let synth = synthesize_clique(&code, StabilizerType::X, 1);
        let decoder = CliqueDecoder::new(&code, StabilizerType::X);
        let n = synth.num_ancillas();
        let inputs: Vec<bool> = bits[..n].to_vec();
        let nl = synth.netlist();
        let depth = *nl.net_depths().iter().max().unwrap();
        let mut st = NetlistState::new(nl);
        let outs = st.settle(nl, &inputs, depth + 2);
        let syndrome = Syndrome::from_bits(inputs);
        match decoder.decode(&syndrome) {
            CliqueDecision::Complex => {
                prop_assert!(outs[synth.complex_output_index()]);
            }
            CliqueDecision::AllZeros => {
                prop_assert!(!outs[synth.complex_output_index()]);
                for &(_, po) in synth.correction_outputs() {
                    prop_assert!(!outs[po]);
                }
            }
            CliqueDecision::Trivial(c) => {
                prop_assert!(!outs[synth.complex_output_index()]);
                for &(q, po) in synth.correction_outputs() {
                    prop_assert_eq!(outs[po], c.qubits().contains(&q), "qubit {}", q);
                }
            }
        }
    }

    /// Structural invariants survive synthesis for any filter depth.
    #[test]
    fn synthesis_invariants_hold(k in 1usize..4) {
        let code = SurfaceCode::new(5);
        let synth = synthesize_clique(&code, StabilizerType::X, k);
        let nl = synth.netlist();
        prop_assert!(nl.is_single_fanout());
        prop_assert!(nl.is_path_balanced_after(synth.filter_gate_count()));
        prop_assert!(nl.jj_count() > 0);
        prop_assert!(nl.critical_path_ps() > 0.0);
    }
}
