//! Streaming hardware/software co-simulation: the synthesized netlist,
//! clocked round by round with [`NetlistState::step_round`], carries
//! its sticky-filter state across a multi-round packed syndrome stream
//! exactly like the behavioral [`CliqueFrontend`] — decision for
//! decision, correction for correction, including the `k - 1`-round
//! warm-up where both sides stay silent.
//!
//! This is the streaming pin the single-shot `settle` tests in
//! `properties.rs` cannot give: there the inputs are held constant, so
//! the filter DFFs never see two *different* consecutive rounds.

use btwc_clique::{CliqueDecision, CliqueFrontend};
use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_sfq::{synthesize_clique, NetlistState};
use btwc_syndrome::PackedBits;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn netlist_streams_the_sticky_filter_like_the_frontend(
        d in prop_oneof![Just(3u16), Just(5)],
        k in 1usize..4,
        stream in proptest::collection::vec(
            proptest::collection::vec(proptest::bool::weighted(0.25), 60),
            1..12,
        ),
    ) {
        let code = SurfaceCode::new(d);
        let ty = StabilizerType::X;
        let synth = synthesize_clique(&code, ty, k);
        let n = synth.num_ancillas();
        let nl = synth.netlist();
        let mut hw = NetlistState::new(nl);
        let mut sw = CliqueFrontend::with_rounds(&code, ty, k);
        for (t, bits) in stream.iter().enumerate() {
            let round: Vec<bool> = bits[..n].to_vec();
            let decision = sw.push_round_packed(&PackedBits::from_bools(&round));
            let outs = hw.step_round(nl, &round, synth.filter_gate_count());
            match decision {
                CliqueDecision::Complex => {
                    prop_assert!(
                        outs[synth.complex_output_index()],
                        "round {t}: behavioral COMPLEX, netlist quiet"
                    );
                }
                CliqueDecision::AllZeros => {
                    prop_assert!(
                        !outs[synth.complex_output_index()],
                        "round {t}: netlist raised COMPLEX on an all-zeros round"
                    );
                    for &(q, po) in synth.correction_outputs() {
                        prop_assert!(!outs[po], "round {t}: stray correction on qubit {q}");
                    }
                }
                CliqueDecision::Trivial(ref c) => {
                    prop_assert!(
                        !outs[synth.complex_output_index()],
                        "round {t}: netlist raised COMPLEX on a trivial round"
                    );
                    for &(q, po) in synth.correction_outputs() {
                        prop_assert_eq!(
                            outs[po],
                            c.qubits().contains(&q),
                            "round {t}: correction mismatch on qubit {}",
                            q
                        );
                    }
                }
            }
        }
    }
}

/// A deterministic two-round sticky scenario the property test only
/// covers probabilistically: a defect seen once is filtered out, seen
/// twice in a row it fires — in the netlist's DFF pipeline exactly as
/// in the behavioral window.
#[test]
fn two_round_sticky_state_crosses_rounds() {
    let code = SurfaceCode::new(3);
    let ty = StabilizerType::X;
    let synth = synthesize_clique(&code, ty, 2);
    let n = synth.num_ancillas();
    let nl = synth.netlist();
    let mut hw = NetlistState::new(nl);
    let mut sw = CliqueFrontend::with_rounds(&code, ty, 2);

    let mut lit = vec![false; n];
    lit[0] = true;
    let quiet = vec![false; n];

    // Round 1: defect appears — both sides must stay silent (filter
    // needs two consecutive rounds).
    let d1 = sw.push_round(&lit);
    let o1 = hw.step_round(nl, &lit, synth.filter_gate_count());
    assert_eq!(d1, CliqueDecision::AllZeros);
    assert!(!o1[synth.complex_output_index()]);
    assert!(synth.correction_outputs().iter().all(|&(_, po)| !o1[po]));

    // Round 2: defect persists — the filter passes it through and both
    // sides emit the same (trivial) verdict.
    let d2 = sw.push_round(&lit);
    let o2 = hw.step_round(nl, &lit, synth.filter_gate_count());
    match d2 {
        CliqueDecision::Trivial(ref c) => {
            assert!(!o2[synth.complex_output_index()]);
            for &(q, po) in synth.correction_outputs() {
                assert_eq!(o2[po], c.qubits().contains(&q), "qubit {q}");
            }
            assert!(!c.qubits().is_empty(), "a persistent lone defect must correct something");
        }
        other => panic!("persistent single defect should be trivial, got {other:?}"),
    }

    // Round 3: defect gone — the sticky window slides it out of both
    // pipelines.
    let d3 = sw.push_round(&quiet);
    let o3 = hw.step_round(nl, &quiet, synth.filter_gate_count());
    assert_eq!(d3, CliqueDecision::AllZeros);
    assert!(!o3[synth.complex_output_index()]);
    assert!(synth.correction_outputs().iter().all(|&(_, po)| !o3[po]));
}
