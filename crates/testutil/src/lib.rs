//! Shared randomized-workload generators for the differential test
//! suites.
//!
//! Every suite that compares two implementations on "realistic noisy
//! windows" — `crates/sparse/tests/sparse_vs_dense.rs`,
//! `crates/core/tests/machine_equivalence.rs`,
//! `tests/transport_pipeline.rs` — draws its randomness through the
//! helpers here, so all differential coverage comes from one
//! distribution: accumulating data errors with independent per-round
//! measurement flips (the phenomenological model the paper's Monte
//! Carlo uses), closed by a perfect readout round where a suite decodes
//! whole windows.
//!
//! The crate is a dev-dependency only; nothing here ships in the
//! decoders.

use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_noise::{NoiseModel, PhenomenologicalNoise, SimRng};
use btwc_syndrome::RoundHistory;

/// Samples one noisy measurement round: accumulates fresh data errors
/// into `errors`, samples transient measurement flips into `meas`, and
/// returns the observed (noisy) syndrome round.
///
/// The RNG call order (data first, then measurement) is part of the
/// contract: suites pin bit-identical traces across refactors, so the
/// stream consumed per round must never change shape.
pub fn noisy_round(
    code: &SurfaceCode,
    ty: StabilizerType,
    noise: &impl NoiseModel,
    rng: &mut SimRng,
    errors: &mut [bool],
    meas: &mut [bool],
) -> Vec<bool> {
    noise.sample_data_into(rng, errors);
    noise.sample_measurement_into(rng, meas);
    let mut round = code.syndrome_of(ty, errors);
    for (r, &m) in round.iter_mut().zip(meas.iter()) {
        *r ^= m;
    }
    round
}

/// One noisy shot window: `rounds` rounds of accumulating data errors
/// with independent measurement flips, closed by a perfect readout
/// round. Returns the window and the final error state.
pub fn noisy_window(
    code: &SurfaceCode,
    ty: StabilizerType,
    p: f64,
    rounds: usize,
    rng: &mut SimRng,
) -> (RoundHistory, Vec<bool>) {
    let noise = PhenomenologicalNoise::uniform(p);
    let n_anc = code.num_ancillas(ty);
    let mut errors = vec![false; code.num_data_qubits()];
    let mut meas = vec![false; n_anc];
    let mut window = RoundHistory::new(n_anc, rounds + 1);
    for _ in 0..rounds {
        let round = noisy_round(code, ty, &noise, rng, &mut errors, &mut meas);
        window.push(&round);
    }
    window.push(&code.syndrome_of(ty, &errors));
    (window, errors)
}

/// Compact single-line dump of a window's detection events — the
/// reproduction payload fuzz suites print on failure, alongside the
/// seed that regenerates the window.
#[must_use]
pub fn dump_events(window: &RoundHistory) -> String {
    let events = window.detection_events();
    let mut out = String::with_capacity(16 + 12 * events.len());
    out.push_str(&format!("{} events [", events.len()));
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("a{}r{}", e.ancilla, e.round));
    }
    out.push(']');
    out
}

/// Total window budget for a fuzz sweep: the suite's default, scaled by
/// the `BTWC_FUZZ_WINDOWS` environment variable when set (the CI
/// slow-fuzz job raises it; a plain `cargo test` keeps the default).
/// The value is the *total* across the sweep's `(p, d)` grid; each grid
/// entry scales proportionally, with at least one window per entry.
#[must_use]
pub fn fuzz_window_budget(default_total: u64) -> u64 {
    std::env::var("BTWC_FUZZ_WINDOWS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(default_total)
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_has_expected_shape_and_is_seed_deterministic() {
        let code = SurfaceCode::new(5);
        let ty = StabilizerType::X;
        let (w1, e1) = noisy_window(&code, ty, 5e-3, 5, &mut SimRng::from_seed(9));
        let (w2, e2) = noisy_window(&code, ty, 5e-3, 5, &mut SimRng::from_seed(9));
        assert_eq!(e1, e2);
        assert_eq!(w1.detection_events(), w2.detection_events());
        assert_eq!(e1.len(), code.num_data_qubits());
    }

    #[test]
    fn noisy_round_matches_window_stream() {
        // `noisy_window` must consume the RNG exactly like a manual
        // `noisy_round` loop — suites rely on interchangeability.
        let code = SurfaceCode::new(5);
        let ty = StabilizerType::X;
        let noise = PhenomenologicalNoise::uniform(1e-2);
        let mut rng = SimRng::from_seed(31);
        let mut errors = vec![false; code.num_data_qubits()];
        let mut meas = vec![false; code.num_ancillas(ty)];
        let mut manual = RoundHistory::new(code.num_ancillas(ty), 4);
        for _ in 0..3 {
            let round = noisy_round(&code, ty, &noise, &mut rng, &mut errors, &mut meas);
            manual.push(&round);
        }
        manual.push(&code.syndrome_of(ty, &errors));
        let (window, final_errors) = noisy_window(&code, ty, 1e-2, 3, &mut SimRng::from_seed(31));
        assert_eq!(window.detection_events(), manual.detection_events());
        assert_eq!(final_errors, errors);
    }

    #[test]
    fn dump_is_compact_and_complete() {
        let code = SurfaceCode::new(5);
        let (window, _) =
            noisy_window(&code, StabilizerType::X, 2e-2, 4, &mut SimRng::from_seed(2));
        let dump = dump_events(&window);
        assert!(dump.starts_with(&format!("{} events [", window.detection_events().len())));
        assert!(dump.ends_with(']'));
    }

    #[test]
    fn fuzz_budget_defaults_without_env() {
        // The test harness does not set BTWC_FUZZ_WINDOWS by default.
        if std::env::var("BTWC_FUZZ_WINDOWS").is_err() {
            assert_eq!(fuzz_window_budget(1234), 1234);
        }
    }
}
