//! The exactness acceptance sweep: sparse and dense decoders commit to
//! matchings of identical total space-time weight on over a thousand
//! randomized noisy windows across d ∈ {5, 9, 13}, and the sparse
//! corrections are equally valid (zero residual syndrome against the
//! final perfect round).

use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_mwpm::MwpmDecoder;
use btwc_noise::{NoiseModel, PhenomenologicalNoise, SimRng};
use btwc_sparse::SparseDecoder;
use btwc_syndrome::RoundHistory;

/// One noisy shot window: `rounds` rounds of accumulating data errors
/// with independent measurement flips, closed by a perfect readout
/// round. Returns the window and the final error state.
fn noisy_window(
    code: &SurfaceCode,
    ty: StabilizerType,
    p: f64,
    rounds: usize,
    rng: &mut SimRng,
) -> (RoundHistory, Vec<bool>) {
    let noise = PhenomenologicalNoise::uniform(p);
    let n_anc = code.num_ancillas(ty);
    let mut errors = vec![false; code.num_data_qubits()];
    let mut meas = vec![false; n_anc];
    let mut window = RoundHistory::new(n_anc, rounds + 1);
    for _ in 0..rounds {
        noise.sample_data_into(rng, &mut errors);
        noise.sample_measurement_into(rng, &mut meas);
        let mut round = code.syndrome_of(ty, &errors);
        for (r, &m) in round.iter_mut().zip(&meas) {
            *r ^= m;
        }
        window.push(&round);
    }
    window.push(&code.syndrome_of(ty, &errors));
    (window, errors)
}

#[test]
fn sparse_weight_equals_dense_on_1000_random_windows() {
    // (distance, error rate, windows): ≥ 1000 windows total, with the
    // higher rates producing dense multi-cluster event sets.
    let plan: [(u16, f64, u64); 6] = [
        (5, 3e-3, 200),
        (5, 1e-2, 200),
        (9, 3e-3, 150),
        (9, 1e-2, 150),
        (13, 3e-3, 150),
        (13, 8e-3, 150),
    ];
    let total: u64 = plan.iter().map(|&(_, _, n)| n).sum();
    assert!(total >= 1000, "acceptance demands at least 1000 windows");
    let ty = StabilizerType::X;
    let mut nonzero = 0u64;
    for (d, p, windows) in plan {
        let code = SurfaceCode::new(d);
        let mut sparse = SparseDecoder::new(&code, ty);
        let mut dense = MwpmDecoder::new(&code, ty);
        let mut rng = SimRng::from_seed(0xACCE97 ^ (u64::from(d) << 32) ^ p.to_bits());
        for i in 0..windows {
            let (window, errors) = noisy_window(&code, ty, p, usize::from(d), &mut rng);
            let (c_sparse, w_sparse) = sparse.decode_window_weighted(&window);
            let (c_dense, w_dense) = dense.decode_window_weighted(&window);
            assert_eq!(
                w_sparse,
                w_dense,
                "weight mismatch at d={d} p={p} window {i} \
                 ({} events)",
                window.detection_event_count()
            );
            nonzero += u64::from(w_sparse > 0);
            // Both corrections must explain the final-round syndrome.
            for c in [&c_sparse, &c_dense] {
                let mut residual = errors.clone();
                c.apply_to(&mut residual);
                assert!(
                    code.syndrome_of(ty, &residual).iter().all(|&s| !s),
                    "residual syndrome at d={d} p={p} window {i}"
                );
            }
        }
    }
    // The sweep must actually exercise the matchers, not decode silence.
    assert!(nonzero > total / 2, "only {nonzero}/{total} windows had events");
}
