//! The exactness acceptance sweeps: sparse and dense decoders commit to
//! matchings of identical total space-time weight on thousands of
//! randomized noisy windows, and the sparse corrections are equally
//! valid (zero residual syndrome against the final perfect round).
//!
//! Three sweeps share the [`btwc_testutil`] window distribution:
//!
//! * the original acceptance sweep at d ∈ {5, 9, 13} and low-to-mid
//!   rates — the regime region collision was built for;
//! * the **chained-cluster** differential fuzz at d ∈ {13, 17, 21} and
//!   p ∈ {5e-3, 1e-2} — the regime where a single cluster chains across
//!   most of a window's events and the in-solver sparse blossom (not a
//!   dense fallback) has to shrink real blossoms to stay exact;
//! * the **streamed** differential fuzz: one continuous noisy trace per
//!   `(d, p, slide)` cell, the window sliding forward `slide` rounds per
//!   decode, asserting at every position that the incremental stream
//!   decode, a from-scratch sparse decode, the dense oracle, and a
//!   pooled streaming decoder all commit to the same matching weight —
//!   the incremental path's cluster-solution reuse, quiet fast path,
//!   and slide re-basing can never change the answer.
//!
//! Set `BTWC_FUZZ_WINDOWS` to rescale the chained-cluster and streamed
//! budgets (the CI slow-fuzz job raises it; the default keeps
//! `cargo test -q` fast). Failures print the exact seed plus a full
//! event dump, so any counterexample is reproducible in isolation.

use std::sync::Arc;

use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_mwpm::MwpmDecoder;
use btwc_noise::{PhenomenologicalNoise, SimRng};
use btwc_pool::Pool;
use btwc_sparse::SparseDecoder;
use btwc_syndrome::RoundHistory;
use btwc_testutil::{dump_events, fuzz_window_budget, noisy_round, noisy_window};

#[test]
fn sparse_weight_equals_dense_on_1000_random_windows() {
    // (distance, error rate, windows): ≥ 1000 windows total, with the
    // higher rates producing dense multi-cluster event sets.
    let plan: [(u16, f64, u64); 6] = [
        (5, 3e-3, 200),
        (5, 1e-2, 200),
        (9, 3e-3, 150),
        (9, 1e-2, 150),
        (13, 3e-3, 150),
        (13, 8e-3, 150),
    ];
    let total: u64 = plan.iter().map(|&(_, _, n)| n).sum();
    assert!(total >= 1000, "acceptance demands at least 1000 windows");
    let ty = StabilizerType::X;
    let mut nonzero = 0u64;
    for (d, p, windows) in plan {
        let code = SurfaceCode::new(d);
        let mut sparse = SparseDecoder::new(&code, ty);
        let mut dense = MwpmDecoder::new(&code, ty);
        let mut rng = SimRng::from_seed(0xACCE97 ^ (u64::from(d) << 32) ^ p.to_bits());
        for i in 0..windows {
            let (window, errors) = noisy_window(&code, ty, p, usize::from(d), &mut rng);
            let (c_sparse, w_sparse) = sparse.decode_window_weighted(&window);
            let (c_dense, w_dense) = dense.decode_window_weighted(&window);
            assert_eq!(
                w_sparse,
                w_dense,
                "weight mismatch at d={d} p={p} window {i}: {}",
                dump_events(&window)
            );
            nonzero += u64::from(w_sparse > 0);
            // Both corrections must explain the final-round syndrome.
            for c in [&c_sparse, &c_dense] {
                let mut residual = errors.clone();
                c.apply_to(&mut residual);
                assert!(
                    code.syndrome_of(ty, &residual).iter().all(|&s| !s),
                    "residual syndrome at d={d} p={p} window {i}"
                );
            }
        }
    }
    // The sweep must actually exercise the matchers, not decode silence.
    assert!(nonzero > total / 2, "only {nonzero}/{total} windows had events");
}

/// The chained-cluster regime: operational-to-high rates at d up to 21,
/// where clusters of well over three events are routine and blossom
/// shrinking on the sparse graph actually fires. Every window is seeded
/// independently (`base ^ window index`), so a failure is reproducible
/// from its printout alone.
#[test]
fn chained_cluster_fuzz_sparse_weight_equals_dense() {
    // Relative weights per (d, p) cell, summing to 100; the total
    // budget (default 1000, `BTWC_FUZZ_WINDOWS` to override) is split
    // proportionally. d = 13 carries the bulk for wall-time reasons;
    // d = 21 at p = 1e-2 is the hardest regime (hundreds of events,
    // window-spanning clusters) and stays covered on every run.
    let plan: [(u16, f64, u64); 6] = [
        (13, 5e-3, 40),
        (13, 1e-2, 34),
        (17, 5e-3, 10),
        (17, 1e-2, 8),
        (21, 5e-3, 5),
        (21, 1e-2, 3),
    ];
    let total = fuzz_window_budget(1000);
    let ty = StabilizerType::X;
    let mut max_events = 0usize;
    let mut ran = 0u64;
    for (d, p, weight) in plan {
        let windows = (total * weight / 100).max(1);
        let code = SurfaceCode::new(d);
        let mut sparse = SparseDecoder::new(&code, ty);
        let mut dense = MwpmDecoder::new(&code, ty);
        let base = 0xC4A1_7ED0u64 ^ (u64::from(d) << 40) ^ p.to_bits();
        for i in 0..windows {
            let seed = base ^ i;
            let (window, errors) =
                noisy_window(&code, ty, p, usize::from(d), &mut SimRng::from_seed(seed));
            max_events = max_events.max(window.detection_event_count());
            let (c_sparse, w_sparse) = sparse.decode_window_weighted(&window);
            let (_, w_dense) = dense.decode_window_weighted(&window);
            assert_eq!(
                w_sparse,
                w_dense,
                "chained-cluster weight mismatch at d={d} p={p} window {i} \
                 (reproduce: SimRng::from_seed({seed:#x}), {} rounds): {}",
                d,
                dump_events(&window)
            );
            // The sparse correction must fully explain the syndrome.
            let mut residual = errors;
            c_sparse.apply_to(&mut residual);
            assert!(
                code.syndrome_of(ty, &residual).iter().all(|&s| !s),
                "residual syndrome at d={d} p={p} window {i} \
                 (reproduce: SimRng::from_seed({seed:#x})): {}",
                dump_events(&window)
            );
            ran += 1;
        }
    }
    assert!(ran >= total.min(1000) * 95 / 100, "budget {total} but only {ran} windows ran");
    // The sweep must reach genuinely chained clusters, not small knots.
    assert!(max_events >= 40, "largest window had only {max_events} events");
}

/// The streamed differential fuzz: one continuous noisy trace per cell,
/// decoded at every slide position by four decoders that must agree on
/// the committed matching weight —
///
/// * the **incremental** streaming sparse decoder (persistent regions,
///   collision edges, and cluster solutions across slides),
/// * a **from-scratch** sparse decoder (batch kernel every position),
/// * the **dense** MWPM oracle,
/// * a **pooled** streaming sparse decoder (≥3-event cluster solves on
///   a `btwc_pool::Pool`), which must further be *bit-identical* to the
///   unpooled incremental decoder — the property the CI `BTWC_WORKERS=1`
///   repeat pins across worker counts.
///
/// Slide-by-1 exercises the incremental machinery hardest (maximum
/// overlap, front re-basing every step); slide-by-`d` replaces the whole
/// window each step and must fall back to a rebuild with the same
/// answer. Each cell's trace is seeded independently, so any failure
/// reproduces from the printed seed and step index alone.
#[test]
fn streamed_fuzz_incremental_equals_fromscratch_and_dense() {
    // (distance, error rate, slide, relative weight of the budget).
    let plan: [(u16, f64, usize, u64); 7] = [
        (13, 5e-3, 1, 28),
        (13, 1e-2, 1, 22),
        (13, 5e-3, 13, 14),
        (17, 5e-3, 1, 14),
        (17, 1e-2, 1, 8),
        (17, 1e-2, 17, 8),
        (21, 5e-3, 1, 6),
    ];
    let total = fuzz_window_budget(1000);
    let ty = StabilizerType::X;
    let mut incremental_positions = 0u64;
    for (d, p, slide, weight) in plan {
        let positions = (total * weight / 100).max(2);
        let code = SurfaceCode::new(d);
        let noise = PhenomenologicalNoise::uniform(p);
        let n_anc = code.num_ancillas(ty);
        let mut streaming = SparseDecoder::new(&code, ty);
        let mut pooled = SparseDecoder::new(&code, ty).with_pool(Arc::new(Pool::auto()));
        let mut batch = SparseDecoder::new(&code, ty);
        let mut dense = MwpmDecoder::new(&code, ty);
        let seed = 0x57E4_A11Du64 ^ (u64::from(d) << 40) ^ ((slide as u64) << 32) ^ p.to_bits();
        let mut rng = SimRng::from_seed(seed);
        let mut errors = vec![false; code.num_data_qubits()];
        let mut meas = vec![false; n_anc];
        let mut window = RoundHistory::new(n_anc, usize::from(d));
        let mut pooled_window = window.clone();
        for step in 0..positions {
            for _ in 0..slide {
                let round = noisy_round(&code, ty, &noise, &mut rng, &mut errors, &mut meas);
                window.push(&round);
                pooled_window.push(&round);
            }
            incremental_positions += u64::from(slide < usize::from(d));
            let (c_inc, w_inc) = streaming.decode_stream_weighted(&window);
            let (c_batch, w_batch) = batch.decode_window_weighted(&window);
            let (_, w_dense) = dense.decode_window_weighted(&window);
            let ctx = || {
                format!(
                    "d={d} p={p} slide={slide} step {step} \
                     (reproduce: SimRng::from_seed({seed:#x}), replay {step} slides): {}",
                    dump_events(&window)
                )
            };
            assert_eq!(w_inc, w_batch, "incremental weight diverged from from-scratch: {}", ctx());
            assert_eq!(w_batch, w_dense, "sparse weight diverged from dense oracle: {}", ctx());
            // Equal-weight matchings may tie-break differently, but any
            // perfect matching of the same events flips a correction
            // with the same spatial syndrome.
            let mut flipped_inc = vec![false; code.num_data_qubits()];
            let mut flipped_batch = flipped_inc.clone();
            c_inc.apply_to(&mut flipped_inc);
            c_batch.apply_to(&mut flipped_batch);
            assert_eq!(
                code.syndrome_of(ty, &flipped_inc),
                code.syndrome_of(ty, &flipped_batch),
                "incremental correction resolves a different syndrome: {}",
                ctx()
            );
            // The pooled streaming decoder follows the same stream and
            // must match the unpooled one bit-for-bit.
            let (c_pool, w_pool) = pooled.decode_stream_weighted(&pooled_window);
            assert_eq!(
                (c_pool, w_pool),
                (c_inc, w_inc),
                "pooled stream decode diverged from inline: {}",
                ctx()
            );
        }
    }
    assert!(
        incremental_positions >= total.min(1000) * 3 / 4,
        "only {incremental_positions} slide positions exercised the incremental path"
    );
}
