//! Property-based validation of the sparse matcher.
//!
//! The contract under test is *exactness*: the sparse region-growth
//! decoder commits to matchings of the same total space-time weight as
//! the exponential brute-force reference (small instances) and the
//! dense blossom decoder (realistic windows), boundary twins included.

use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_mwpm::brute::brute_force_min_weight;
use btwc_mwpm::MwpmDecoder;
use btwc_sparse::SparseDecoder;
use btwc_syndrome::{DetectionEvent, RoundHistory};
use proptest::prelude::*;

/// Deduplicated, decode-order-normalized event set.
fn normalize(mut events: Vec<DetectionEvent>) -> Vec<DetectionEvent> {
    events.sort_unstable_by_key(|e| (e.round, e.ancilla));
    events.dedup();
    events
}

/// The ancillas within detector-graph distance 2 of `center` — a tight
/// neighborhood whose events are guaranteed to chain into one cluster
/// when they sit in nearby rounds.
fn neighborhood(code: &SurfaceCode, ty: StabilizerType, center: usize) -> Vec<usize> {
    let graph = code.detector_graph(ty);
    let mut ball: Vec<usize> = vec![center];
    for &n1 in graph.neighbors(center) {
        ball.push(n1 as usize);
        for &n2 in graph.neighbors(n1 as usize) {
            ball.push(n2 as usize);
        }
    }
    ball.sort_unstable();
    ball.dedup();
    ball
}

/// The exact optimum for an event set, via the brute-force matcher on
/// the dense event + boundary-twin construction (nodes `0..n` events,
/// `n..2n` twins; twin–twin edges free).
fn brute_optimum(code: &SurfaceCode, ty: StabilizerType, events: &[DetectionEvent]) -> i64 {
    let graph = code.detector_graph(ty);
    let n = events.len();
    let weight = |u: usize, v: usize| -> Option<i64> {
        match (u < n, v < n) {
            (true, true) => {
                let (a, b) = (&events[u], &events[v]);
                let spatial = graph.distance(a.ancilla, b.ancilla);
                Some(i64::from(spatial) + a.round.abs_diff(b.round) as i64)
            }
            (true, false) => {
                (v - n == u).then(|| i64::from(graph.boundary_distance(events[u].ancilla)))
            }
            (false, true) => {
                (u - n == v).then(|| i64::from(graph.boundary_distance(events[v].ancilla)))
            }
            (false, false) => Some(0),
        }
    };
    brute_force_min_weight(2 * n, weight).expect("twin construction always matches")
}

/// Deduplicated events drawn from an (ancilla, round) grid.
fn events_from_cells(
    code: &SurfaceCode,
    ty: StabilizerType,
    rounds: usize,
    cells: &[usize],
) -> Vec<DetectionEvent> {
    let n_anc = code.num_ancillas(ty);
    let mut events: Vec<DetectionEvent> = cells
        .iter()
        .map(|&c| {
            let c = c % (n_anc * rounds);
            DetectionEvent { ancilla: c % n_anc, round: c / n_anc }
        })
        .collect();
    events.sort_unstable_by_key(|e| (e.round, e.ancilla));
    events.dedup();
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Sparse equals brute force on arbitrary small event sets — odd
    /// and even counts, forcing odd numbers of boundary exits.
    #[test]
    fn sparse_is_optimal_vs_brute(
        d in prop_oneof![Just(3u16), Just(5), Just(7)],
        cells in proptest::collection::vec(0usize..100_000, 0..9),
    ) {
        let code = SurfaceCode::new(d);
        let ty = StabilizerType::X;
        let events = events_from_cells(&code, ty, 6, &cells);
        let mut sparse = SparseDecoder::new(&code, ty);
        let (_, w) = sparse.decode_events_weighted(&events);
        prop_assert_eq!(w, brute_optimum(&code, ty, &events), "events {:?}", events);
    }

    /// Sparse equals the dense blossom on windows whose ancilla count
    /// straddles the 64-bit word boundary (d = 13 → 84 ancillas), on
    /// both stabilizer types.
    #[test]
    fn sparse_matches_dense_across_word_boundary(
        use_z in any::<bool>(),
        cells in proptest::collection::vec(0usize..1_000_000, 1..24),
    ) {
        let code = SurfaceCode::new(13);
        let ty = if use_z { StabilizerType::Z } else { StabilizerType::X };
        let events = events_from_cells(&code, ty, 10, &cells);
        let mut sparse = SparseDecoder::new(&code, ty);
        let mut dense = MwpmDecoder::new(&code, ty);
        let (_, w_sparse) = sparse.decode_events_weighted(&events);
        let (_, w_dense) = dense.decode_events_weighted(&events);
        prop_assert_eq!(w_sparse, w_dense, "events {:?}", events);
    }

    /// The sparse corrections cancel the syndrome of any accumulated
    /// data-error pattern observed over a closed window (the same
    /// contract the dense decoder's suite pins).
    #[test]
    fn corrections_cancel_arbitrary_patterns(
        d in prop_oneof![Just(3u16), Just(5), Just(7)],
        flips in proptest::collection::vec(0usize..49, 0..10),
    ) {
        let code = SurfaceCode::new(d);
        let n = code.num_data_qubits();
        let decoder = SparseDecoder::new(&code, StabilizerType::X);
        let mut errors = vec![false; n];
        for &q in &flips {
            errors[q % n] ^= true;
        }
        let round = code.syndrome_of(StabilizerType::X, &errors);
        let mut window = RoundHistory::new(round.len(), 2);
        window.push(&round);
        window.push(&round);
        let c = decoder.decode_window(&window);
        let mut residual = errors;
        c.apply_to(&mut residual);
        let s = code.syndrome_of(StabilizerType::X, &residual);
        prop_assert!(s.iter().all(|&b| !b));
    }

    /// Odd clusters of 5–7 events packed into one tight neighborhood:
    /// the regime where the in-solver blossom must form and shrink odd
    /// cycles (an odd event count forces at least one boundary exit, and
    /// the mutual collisions create odd alternating cycles). Exhaustive
    /// enumeration over the boundary-twin construction is the oracle.
    #[test]
    fn odd_clusters_force_blossoms_and_stay_optimal(
        d in prop_oneof![Just(7u16), Just(13)],
        center in 0usize..1_000,
        picks in proptest::collection::vec((0usize..64, 0usize..3), 5..8),
    ) {
        let code = SurfaceCode::new(d);
        let ty = StabilizerType::X;
        let graph = code.detector_graph(ty);
        let ball = neighborhood(&code, ty, center % graph.num_nodes());
        let events = normalize(
            picks
                .iter()
                .map(|&(i, t)| DetectionEvent { ancilla: ball[i % ball.len()], round: t })
                .collect(),
        );
        let mut sparse = SparseDecoder::new(&code, ty);
        let (c, w) = sparse.decode_events_weighted(&events);
        prop_assert_eq!(w, brute_optimum(&code, ty, &events), "events {:?}", events);
        // The correction must cancel exactly the even-parity part of the
        // event set per ancilla column (weight optimality is the deep
        // contract; this guards the projection).
        let syndrome_flips = c.qubits().len();
        prop_assert!(syndrome_flips <= events.len() * usize::from(d), "runaway correction");
    }

    /// Boundary twins: events pinned near the open boundary must decode
    /// to exits whose weight the brute construction confirms (the exit
    /// cost is the ancilla's boundary distance, twins pair freely).
    #[test]
    fn boundary_heavy_sets_stay_optimal(
        d in prop_oneof![Just(5u16), Just(7)],
        picks in proptest::collection::vec((0usize..64, 0usize..4), 1..7),
    ) {
        let code = SurfaceCode::new(d);
        let ty = StabilizerType::X;
        let graph = code.detector_graph(ty);
        let near: Vec<usize> =
            (0..graph.num_nodes()).filter(|&a| graph.boundary_distance(a) == 1).collect();
        let mut events: Vec<DetectionEvent> = picks
            .iter()
            .map(|&(i, t)| DetectionEvent { ancilla: near[i % near.len()], round: t })
            .collect();
        events.sort_unstable_by_key(|e| (e.round, e.ancilla));
        events.dedup();
        let mut sparse = SparseDecoder::new(&code, ty);
        let (_, w) = sparse.decode_events_weighted(&events);
        prop_assert_eq!(w, brute_optimum(&code, ty, &events), "events {:?}", events);
        // Every event is one step from the boundary, so the optimum can
        // never exceed all-exits.
        prop_assert!(w <= events.len() as i64);
    }
}

/// Deterministic blossom-forcing constructions: the named shapes the
/// chained-cluster issue calls out, each cross-checked against the
/// exhaustive matcher (and the dense decoder where the set fits a
/// realistic window).
mod forced_blossoms {
    use super::*;

    /// Five events stacked on one ancilla in consecutive rounds: a pure
    /// time-like chain with an odd count, so two zero-ancilla-distance
    /// pairs match and one event must exit through the boundary.
    #[test]
    fn time_like_chain_of_five() {
        let code = SurfaceCode::new(9);
        let ty = StabilizerType::X;
        let graph = code.detector_graph(ty);
        let a = (0..graph.num_nodes()).max_by_key(|&a| graph.boundary_distance(a)).unwrap();
        let events: Vec<DetectionEvent> =
            (0..5).map(|t| DetectionEvent { ancilla: a, round: t }).collect();
        let mut sparse = SparseDecoder::new(&code, ty);
        let (_, w) = sparse.decode_events_weighted(&events);
        assert_eq!(w, brute_optimum(&code, ty, &events));
        // Two unit time-like pairs plus one boundary exit.
        assert_eq!(w, 2 + i64::from(graph.boundary_distance(a)));
    }

    /// Seven events hugging the open boundary: every exit is cheap, so
    /// the optimum mixes direct pairs with boundary twins — the twin
    /// side of the two-copy construction does real work here.
    #[test]
    fn boundary_twin_heavy_cluster_of_seven() {
        let code = SurfaceCode::new(13);
        let ty = StabilizerType::X;
        let graph = code.detector_graph(ty);
        let near: Vec<usize> =
            (0..graph.num_nodes()).filter(|&a| graph.boundary_distance(a) == 1).collect();
        assert!(near.len() >= 4);
        let mut events = Vec::new();
        for (i, &a) in near.iter().take(4).enumerate() {
            events.push(DetectionEvent { ancilla: a, round: i % 2 });
        }
        for &a in near.iter().take(3) {
            events.push(DetectionEvent { ancilla: a, round: 2 });
        }
        let events = normalize(events);
        assert_eq!(events.len(), 7);
        let mut sparse = SparseDecoder::new(&code, ty);
        let (_, w) = sparse.decode_events_weighted(&events);
        assert_eq!(w, brute_optimum(&code, ty, &events));
        assert!(w <= 7, "boundary-hugging events never pay more than all-exits");
    }

    /// A 7-event chained cluster on ancillas past the first 64-bit word
    /// at d = 13 (84 X ancillas): cross-word positions must behave
    /// identically, pinned against both oracles.
    #[test]
    fn cross_word_chained_cluster_of_seven() {
        let code = SurfaceCode::new(13);
        let ty = StabilizerType::X;
        let graph = code.detector_graph(ty);
        assert!(graph.num_nodes() > 64, "d=13 must cross the word boundary");
        // A tight neighborhood around a high-index ancilla: positions
        // past (or straddling) the first 64-bit word, every pair within
        // collision range.
        let ball = neighborhood(&code, ty, 70);
        let chain: Vec<usize> = ball.iter().copied().take(4).collect();
        assert_eq!(chain.len(), 4);
        let mut events = Vec::new();
        for (i, &a) in chain.iter().enumerate() {
            events.push(DetectionEvent { ancilla: a, round: i / 2 });
        }
        for &a in chain.iter().take(3) {
            events.push(DetectionEvent { ancilla: a, round: 3 });
        }
        let events = normalize(events);
        assert_eq!(events.len(), 7);
        assert!(events.iter().any(|e| e.ancilla >= 64), "cluster must reach past word 0");
        let mut sparse = SparseDecoder::new(&code, ty);
        let mut dense = MwpmDecoder::new(&code, ty);
        let (_, w_sparse) = sparse.decode_events_weighted(&events);
        let (_, w_dense) = dense.decode_events_weighted(&events);
        assert_eq!(w_sparse, brute_optimum(&code, ty, &events));
        assert_eq!(w_sparse, w_dense);
    }

    /// An odd ring of five mutually chained bulk events in one round:
    /// odd alternating cycles are unavoidable, so the solver must form
    /// and shrink at least one blossom to reach the optimum.
    #[test]
    fn five_event_ring_in_the_bulk() {
        let code = SurfaceCode::new(13);
        let ty = StabilizerType::X;
        let graph = code.detector_graph(ty);
        let center = (0..graph.num_nodes()).max_by_key(|&a| graph.boundary_distance(a)).unwrap();
        let ball = neighborhood(&code, ty, center);
        assert!(ball.len() >= 5, "bulk neighborhood too small: {ball:?}");
        let events = normalize(
            ball.iter().take(5).map(|&a| DetectionEvent { ancilla: a, round: 1 }).collect(),
        );
        assert_eq!(events.len(), 5);
        let mut sparse = SparseDecoder::new(&code, ty);
        let mut dense = MwpmDecoder::new(&code, ty);
        let (_, w_sparse) = sparse.decode_events_weighted(&events);
        let (_, w_dense) = dense.decode_events_weighted(&events);
        assert_eq!(w_sparse, brute_optimum(&code, ty, &events));
        assert_eq!(w_sparse, w_dense);
    }
}
