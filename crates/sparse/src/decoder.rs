//! The sparse space-time decoder: cluster formation + exact per-cluster
//! matching, entirely on the sparse graph.

use std::sync::Mutex;

use btwc_lattice::{DetectorGraph, StabilizerType, SurfaceCode};
use btwc_mwpm::project::project_pairs;
use btwc_syndrome::{ComplexDecoder, Correction, DetectionEvent, RoundHistory};

use crate::blossom::ClusterEdge;
use crate::regions::merge_colliding_regions;
use crate::scratch::SparseScratch;

/// Sparse-blossom off-chip decoder: minimum-weight perfect matching of
/// space-time detection events without ever materializing the dense
/// all-pairs event-weight matrix.
///
/// The decode is a two-phase sparse computation over the detector
/// graph:
///
/// 1. **Region collision** (see [`crate::regions`]): every event owns a
///    region of the space-time graph whose radius is capped at its own
///    boundary distance (the virtual boundary twin as a zero-cost
///    exit). Colliding regions merge into clusters; any matching edge
///    that could ever beat two boundary exits is provably
///    intra-cluster. Collisions are detected in round order with the
///    lattice's O(1) precomputed distances, so discovery is
///    output-sensitive instead of all-pairs-matrix-shaped.
/// 2. **Per-cluster exact solve**: singletons exit through the boundary
///    (weight = boundary distance), pairs take the cheaper of the direct
///    edge and two exits, and larger clusters run the in-crate sparse
///    blossom ([`crate::blossom`]) on the cluster's *collision edges*
///    plus boundary twins — alternating trees with blossom shrinking
///    directly on the sparse graph, never a dense all-pairs table.
///
/// The total matching weight therefore *equals* the dense
/// [`btwc_mwpm::MwpmDecoder`]'s on every input — this is a faster exact
/// decoder, not an approximation (the property suite cross-checks both
/// against the exponential reference matcher). What changes is the
/// cost model: the dense path pays O(n²) matrix fill + O(n³) blossom
/// over *all* events per decode, while this path pays a pruned
/// collision scan plus per-cluster matchings sized by how entangled the
/// events actually are — near-linear in the event count for the sparse
/// windows the BTWC hierarchy actually ships off-chip.
#[derive(Debug)]
pub struct SparseDecoder {
    ty: StabilizerType,
    graph: DetectorGraph,
    /// Reusable decode state; a mutex only so the `&self` decode of the
    /// `ComplexDecoder` plumbing stays `Sync` — the Monte Carlo loops
    /// use the `_mut` paths, which never lock.
    scratch: Mutex<SparseScratch>,
}

impl Clone for SparseDecoder {
    fn clone(&self) -> Self {
        Self { ty: self.ty, graph: self.graph.clone(), scratch: Mutex::new(SparseScratch::new()) }
    }
}

impl SparseDecoder {
    /// Builds the decoder for stabilizer type `ty` of `code`.
    #[must_use]
    pub fn new(code: &SurfaceCode, ty: StabilizerType) -> Self {
        Self {
            ty,
            graph: code.detector_graph(ty).clone(),
            scratch: Mutex::new(SparseScratch::new()),
        }
    }

    /// The stabilizer type this decoder serves.
    #[must_use]
    pub fn stabilizer_type(&self) -> StabilizerType {
        self.ty
    }

    /// Decodes an explicit set of detection events into a correction.
    ///
    /// # Panics
    ///
    /// Panics if any event references an out-of-range ancilla.
    #[must_use]
    pub fn decode_events(&self, events: &[DetectionEvent]) -> Correction {
        let mut scratch = self.scratch.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        Self::decode_events_with(&self.graph, events, &mut scratch).0
    }

    /// [`SparseDecoder::decode_events`] through exclusive access — no
    /// mutex traffic (the per-thread decode path of the simulators).
    ///
    /// # Panics
    ///
    /// Panics if any event references an out-of-range ancilla.
    #[must_use]
    pub fn decode_events_mut(&mut self, events: &[DetectionEvent]) -> Correction {
        self.decode_events_weighted(events).0
    }

    /// [`SparseDecoder::decode_events_mut`] also reporting the total
    /// space-time weight of the matching — the exactness witness the
    /// test suite compares against the dense decoder and the brute-force
    /// reference.
    ///
    /// # Panics
    ///
    /// Panics if any event references an out-of-range ancilla.
    #[must_use]
    pub fn decode_events_weighted(&mut self, events: &[DetectionEvent]) -> (Correction, i64) {
        let scratch = self.scratch.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner);
        Self::decode_events_with(&self.graph, events, scratch)
    }

    /// Decodes a whole window of measurement rounds. Windows without
    /// detection events are dismissed by a fused XOR+popcount scan
    /// before the scratch lock is taken; otherwise the event diff lands
    /// in a reused buffer.
    #[must_use]
    pub fn decode_window(&self, history: &RoundHistory) -> Correction {
        if history.detection_event_count() == 0 {
            return Correction::new();
        }
        let mut scratch = self.scratch.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut events = std::mem::take(&mut scratch.events);
        history.detection_events_into(&mut events);
        let out = Self::decode_events_with(&self.graph, &events, &mut scratch).0;
        scratch.events = events;
        out
    }

    /// [`SparseDecoder::decode_window`] through exclusive access (the
    /// simulators' lock-free path).
    #[must_use]
    pub fn decode_window_mut(&mut self, history: &RoundHistory) -> Correction {
        self.decode_window_weighted(history).0
    }

    /// [`SparseDecoder::decode_window_mut`] also reporting the committed
    /// matching's total space-time weight.
    #[must_use]
    pub fn decode_window_weighted(&mut self, history: &RoundHistory) -> (Correction, i64) {
        if history.detection_event_count() == 0 {
            return (Correction::new(), 0);
        }
        let scratch = self.scratch.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut events = std::mem::take(&mut scratch.events);
        history.detection_events_into(&mut events);
        let out = Self::decode_events_with(&self.graph, &events, scratch);
        scratch.events = events;
        out
    }

    /// The decode kernel: merge colliding regions, then solve each
    /// cluster exactly.
    fn decode_events_with(
        graph: &DetectorGraph,
        events: &[DetectionEvent],
        scratch: &mut SparseScratch,
    ) -> (Correction, i64) {
        let n = events.len();
        if n == 0 {
            return (Correction::new(), 0);
        }
        for ev in events {
            assert!(ev.ancilla < graph.num_nodes(), "event ancilla {} out of range", ev.ancilla);
        }
        scratch.prepare(n);
        merge_colliding_regions(graph, events, scratch);

        // Resolve each event's cluster root, then sort event indices by
        // root so every cluster is a contiguous run (in-place sort of a
        // recycled index buffer — no per-decode allocation).
        for i in 0..n as u32 {
            let r = scratch.find(i);
            scratch.root.push(r);
        }
        let SparseScratch {
            root,
            order,
            collisions,
            local_events,
            local_id,
            cluster_edges,
            pairs,
            arena,
            ..
        } = scratch;
        order.sort_unstable_by_key(|&i| root[i as usize]);
        // Group the collision edges the same way: every edge is
        // intra-cluster by construction, so sorting by one endpoint's
        // root makes each cluster's edges one contiguous run, consumed
        // in step with the cluster walk below.
        collisions.sort_unstable_by_key(|e| root[e.u as usize]);

        let mut flips = Vec::new();
        let mut total = 0i64;
        let mut start = 0usize;
        let mut edge_at = 0usize;
        while start < n {
            let cluster_root = root[order[start] as usize];
            let mut end = start + 1;
            while end < n && root[order[end] as usize] == cluster_root {
                end += 1;
            }
            let mut edge_end = edge_at;
            while edge_end < collisions.len()
                && root[collisions[edge_end].u as usize] == cluster_root
            {
                edge_end += 1;
            }
            match end - start {
                // A lone defect: its region met nobody within its own
                // boundary distance, so the boundary exit is optimal.
                1 => {
                    let ev = &events[order[start] as usize];
                    flips.extend(graph.path_to_boundary(ev.ancilla));
                    total += i64::from(graph.boundary_distance(ev.ancilla));
                }
                // A pair: the direct edge against two boundary exits.
                2 => {
                    let (u, v) =
                        (&events[order[start] as usize], &events[order[start + 1] as usize]);
                    let direct = i64::from(graph.distance(u.ancilla, v.ancilla))
                        + u.round.abs_diff(v.round) as i64;
                    let exits = i64::from(graph.boundary_distance(u.ancilla))
                        + i64::from(graph.boundary_distance(v.ancilla));
                    if direct <= exits {
                        flips.extend(graph.path(u.ancilla, v.ancilla));
                        total += direct;
                    } else {
                        flips.extend(graph.path_to_boundary(u.ancilla));
                        flips.extend(graph.path_to_boundary(v.ancilla));
                        total += exits;
                    }
                }
                // A bigger knot: the in-solver sparse blossom over the
                // cluster's *collision edges* plus boundary twins. The
                // two-copy construction keeps the graph sparse: each
                // event connects to its own twin (weight = its boundary
                // exit), and every collision edge is mirrored between
                // the twins at weight zero, so however many events pair
                // up, the leftover twins can always pair off for free —
                // an optimal matching never needs an edge the region
                // scan did not discover.
                k => {
                    local_events.clear();
                    local_events.extend(order[start..end].iter().map(|&i| events[i as usize]));
                    for (li, &gi) in order[start..end].iter().enumerate() {
                        local_id[gi as usize] = li as u32;
                    }
                    cluster_edges.clear();
                    for e in &collisions[edge_at..edge_end] {
                        let (lu, lv) = (local_id[e.u as usize], local_id[e.v as usize]);
                        cluster_edges.push(ClusterEdge::new(lu, lv, e.weight));
                        cluster_edges.push(ClusterEdge::new(lu + k as u32, lv + k as u32, 0));
                    }
                    for (li, ev) in local_events.iter().enumerate() {
                        cluster_edges.push(ClusterEdge::new(
                            li as u32,
                            (li + k) as u32,
                            i64::from(graph.boundary_distance(ev.ancilla)),
                        ));
                    }
                    total += arena.solve(2 * k, cluster_edges, pairs);
                    project_pairs(graph, local_events, pairs, &mut flips);
                }
            }
            edge_at = edge_end;
            start = end;
        }
        (Correction::from_flips(flips), total)
    }
}

impl ComplexDecoder for SparseDecoder {
    fn decode_window(&self, window: &RoundHistory) -> Correction {
        SparseDecoder::decode_window(self, window)
    }

    fn decode_window_mut(&mut self, window: &RoundHistory) -> Correction {
        SparseDecoder::decode_window_mut(self, window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btwc_lattice::DataQubit;
    use btwc_noise::SimRng;

    fn window_for(code: &SurfaceCode, errors: &[bool], rounds: usize) -> RoundHistory {
        let round = code.syndrome_of(StabilizerType::X, errors);
        let mut h = RoundHistory::new(round.len(), rounds.max(2));
        for _ in 0..rounds {
            h.push(&round);
        }
        h
    }

    #[test]
    fn empty_window_decodes_to_nothing() {
        let code = SurfaceCode::new(5);
        let decoder = SparseDecoder::new(&code, StabilizerType::X);
        let errors = vec![false; code.num_data_qubits()];
        let c = decoder.decode_window(&window_for(&code, &errors, 3));
        assert!(c.is_empty());
        assert_eq!(decoder.stabilizer_type(), StabilizerType::X);
    }

    #[test]
    fn single_interior_error_is_exactly_corrected() {
        let code = SurfaceCode::new(5);
        let decoder = SparseDecoder::new(&code, StabilizerType::X);
        let q = DataQubit::new(2, 2).index(5);
        let mut errors = vec![false; code.num_data_qubits()];
        errors[q] = true;
        let c = decoder.decode_window(&window_for(&code, &errors, 2));
        assert_eq!(c.qubits(), &[q]);
    }

    #[test]
    fn every_single_error_is_corrected_equivalently() {
        for d in [3u16, 5, 7] {
            let code = SurfaceCode::new(d);
            let decoder = SparseDecoder::new(&code, StabilizerType::X);
            for q in 0..code.num_data_qubits() {
                let mut errors = vec![false; code.num_data_qubits()];
                errors[q] = true;
                let c = decoder.decode_window(&window_for(&code, &errors, 2));
                let mut residual = errors.clone();
                c.apply_to(&mut residual);
                assert!(
                    code.syndrome_of(StabilizerType::X, &residual).iter().all(|&s| !s),
                    "d={d} q={q}: residual syndrome"
                );
                assert!(
                    !code.is_logical_error(StabilizerType::X, &residual),
                    "d={d} q={q}: logical error introduced"
                );
            }
        }
    }

    #[test]
    fn measurement_error_produces_no_correction() {
        let code = SurfaceCode::new(5);
        let decoder = SparseDecoder::new(&code, StabilizerType::X);
        let n_anc = code.num_ancillas(StabilizerType::X);
        let mut h = RoundHistory::new(n_anc, 8);
        let quiet = vec![false; n_anc];
        let mut flipped = quiet.clone();
        flipped[2] = true;
        h.push(&quiet);
        h.push(&flipped);
        h.push(&quiet);
        let c = decoder.decode_window(&h);
        assert!(c.is_empty(), "time-like pair must not touch data qubits");
    }

    #[test]
    fn below_half_distance_errors_never_cause_logical_failure() {
        for d in [3u16, 5, 7] {
            let code = SurfaceCode::new(d);
            let decoder = SparseDecoder::new(&code, StabilizerType::X);
            let t = usize::from((d - 1) / 2);
            let mut rng = SimRng::from_seed(0xFEED + u64::from(d));
            for _ in 0..400 {
                let mut errors = vec![false; code.num_data_qubits()];
                for _ in 0..t {
                    errors[rng.below(code.num_data_qubits())] = true;
                }
                let c = decoder.decode_window(&window_for(&code, &errors, 2));
                let mut residual = errors.clone();
                c.apply_to(&mut residual);
                assert!(
                    code.syndrome_of(StabilizerType::X, &residual).iter().all(|&s| !s),
                    "d={d}: residual syndrome for {errors:?}"
                );
                assert!(
                    !code.is_logical_error(StabilizerType::X, &residual),
                    "d={d}: weight<=t error mis-decoded: {errors:?}"
                );
            }
        }
    }

    // The exactness contract (sparse weight == dense weight on noisy
    // windows) is pinned by the 1000-window sweep in
    // tests/sparse_vs_dense.rs and the brute-force property suite.

    #[test]
    fn locked_and_mut_paths_agree() {
        let code = SurfaceCode::new(7);
        let mut decoder = SparseDecoder::new(&code, StabilizerType::X);
        let mut rng = SimRng::from_seed(7);
        for _ in 0..30 {
            let mut errors = vec![false; code.num_data_qubits()];
            for _ in 0..3 {
                errors[rng.below(code.num_data_qubits())] ^= true;
            }
            let window = window_for(&code, &errors, 3);
            let locked = decoder.decode_window(&window);
            assert_eq!(locked, decoder.decode_window_mut(&window));
            let events = window.detection_events();
            assert_eq!(decoder.decode_events(&events), decoder.decode_events_mut(&events));
        }
    }

    #[test]
    fn clone_decodes_identically() {
        let code = SurfaceCode::new(5);
        let decoder = SparseDecoder::new(&code, StabilizerType::X);
        let mut errors = vec![false; code.num_data_qubits()];
        errors[7] = true;
        errors[12] = true;
        let w = window_for(&code, &errors, 2);
        assert_eq!(decoder.decode_window(&w), decoder.clone().decode_window(&w));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_event_rejected() {
        let code = SurfaceCode::new(3);
        let decoder = SparseDecoder::new(&code, StabilizerType::X);
        let _ = decoder.decode_events(&[DetectionEvent { ancilla: 999, round: 0 }]);
    }
}
