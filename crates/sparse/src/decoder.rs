//! The sparse space-time decoder: cluster formation + exact per-cluster
//! matching, entirely on the sparse graph.

use std::sync::{Arc, Mutex, PoisonError};

use btwc_lattice::{DetectorGraph, StabilizerType, SurfaceCode};
use btwc_mwpm::project::project_pairs;
use btwc_pool::Pool;
use btwc_syndrome::{ComplexDecoder, Correction, DetectionEvent, RoundHistory};
use btwc_telemetry::{Counter, Domain, Histogram, MetricsRegistry};

use crate::blossom::{
    remap_stored_blossoms, BlossomArena, ClusterEdge, StoredBlossom, WarmStart, NO_HINT,
};
use crate::regions::{merge_colliding_regions, scan_dirty_collisions};
use crate::scratch::SparseScratch;
use crate::stream::{record_solution, CachedSolution, Slide, StreamState, DEAD_MEMBER, NO_SOL};

/// Sparse-blossom off-chip decoder: minimum-weight perfect matching of
/// space-time detection events without ever materializing the dense
/// all-pairs event-weight matrix.
///
/// The decode is a two-phase sparse computation over the detector
/// graph:
///
/// 1. **Region collision** (see [`crate::regions`]): every event owns a
///    region of the space-time graph whose radius is capped at its own
///    boundary distance (the virtual boundary twin as a zero-cost
///    exit). Colliding regions merge into clusters; any matching edge
///    that could ever beat two boundary exits is provably
///    intra-cluster. Collisions are detected in round order with the
///    lattice's O(1) precomputed distances, so discovery is
///    output-sensitive instead of all-pairs-matrix-shaped.
/// 2. **Per-cluster exact solve**: singletons exit through the boundary
///    (weight = boundary distance), pairs take the cheaper of the direct
///    edge and two exits, and larger clusters run the in-crate sparse
///    blossom ([`crate::blossom`]) on the cluster's *collision edges*
///    plus boundary twins — alternating trees with blossom shrinking
///    directly on the sparse graph, never a dense all-pairs table.
///
/// The total matching weight therefore *equals* the dense
/// [`btwc_mwpm::MwpmDecoder`]'s on every input — this is a faster exact
/// decoder, not an approximation (the property suite cross-checks both
/// against the exponential reference matcher). What changes is the
/// cost model: the dense path pays O(n²) matrix fill + O(n³) blossom
/// over *all* events per decode, while this path pays a pruned
/// collision scan plus per-cluster matchings sized by how entangled the
/// events actually are — near-linear in the event count for the sparse
/// windows the BTWC hierarchy actually ships off-chip.
///
/// Two orthogonal accelerations sit on top of the batch decode:
///
/// * **Streaming** ([`SparseDecoder::decode_stream_weighted`]): when
///   successive calls cover forward slides of one [`RoundHistory`]
///   stream, region collisions and committed cluster matchings persist
///   between calls ([`crate::stream`]) and only the work the slide
///   invalidated is redone.
/// * **Pooled cluster solves** ([`SparseDecoder::set_pool`]): the
///   independent ≥3-event cluster matchings of one window are
///   dispatched onto a [`btwc_pool::Pool`] and folded back in
///   deterministic cluster order — bit-identical to the inline path
///   for any worker count.
#[derive(Debug)]
pub struct SparseDecoder {
    ty: StabilizerType,
    graph: DetectorGraph,
    /// Reusable decode state; a mutex only so the `&self` decode of the
    /// `ComplexDecoder` plumbing stays `Sync` — the Monte Carlo loops
    /// use the `_mut` paths, which never lock.
    scratch: Mutex<SparseScratch>,
    /// Optional pool for the per-window ≥3-event cluster solves.
    pool: Option<Arc<Pool>>,
    /// Recycled solver arenas for pooled cluster tasks (pop on task
    /// start, push on task end — sized by however many tasks ever ran
    /// concurrently).
    arena_pool: Mutex<Vec<BlossomArena>>,
    /// Incremental sliding-window state (see [`crate::stream`]).
    stream: StreamState,
    /// Optional metric handles (see [`SparseDecoder::attach_telemetry`]).
    telemetry: Option<SparseTelemetry>,
}

/// Cycle-domain metric handles for the sparse decode paths. Every
/// update is a commutative atomic increment driven by deterministic
/// per-cluster decisions, so the recorded values are bit-identical for
/// any pool worker count.
#[derive(Debug, Clone)]
pub(crate) struct SparseTelemetry {
    /// Stream classifications: replay-verbatim, incremental, rebuild.
    quiet_slides: Counter,
    incremental_slides: Counter,
    rebuilds: Counter,
    /// Clusters whose committed matching was replayed from the cache
    /// vs. clusters that ran a solve (any size, any decode path).
    clusters_replayed: Counter,
    clusters_solved: Counter,
    /// Event count of every solved cluster.
    cluster_size: Histogram,
    /// ≥3-event solves that started from an assembled warm hint vs.
    /// cold, and what the seeding did with each hinted subtree.
    warm_hinted: Counter,
    warm_cold: Counter,
    warm_offered: Counter,
    warm_imported: Counter,
    warm_rejected_structure: Counter,
    warm_rejected_feasibility: Counter,
    warm_rejected_tightness: Counter,
}

impl SparseTelemetry {
    fn register(registry: &MetricsRegistry) -> Self {
        let c = |name: &str| registry.counter(name, Domain::Cycles);
        Self {
            quiet_slides: c("sparse.stream.quiet_slides"),
            incremental_slides: c("sparse.stream.incremental_slides"),
            rebuilds: c("sparse.stream.rebuilds"),
            clusters_replayed: c("sparse.stream.clusters_replayed"),
            clusters_solved: c("sparse.clusters_solved"),
            cluster_size: registry.histogram("sparse.cluster_solve_size", Domain::Cycles),
            warm_hinted: c("sparse.warm.hinted_solves"),
            warm_cold: c("sparse.warm.cold_solves"),
            warm_offered: c("sparse.warm.subtrees_offered"),
            warm_imported: c("sparse.warm.subtrees_imported"),
            warm_rejected_structure: c("sparse.warm.subtrees_rejected_structure"),
            warm_rejected_feasibility: c("sparse.warm.subtrees_rejected_feasibility"),
            warm_rejected_tightness: c("sparse.warm.subtrees_rejected_tightness"),
        }
    }
}

impl Clone for SparseDecoder {
    fn clone(&self) -> Self {
        Self {
            ty: self.ty,
            graph: self.graph.clone(),
            scratch: Mutex::new(SparseScratch::new()),
            pool: self.pool.clone(),
            arena_pool: Mutex::new(Vec::new()),
            // Stream state is a memo over *this* decoder's call
            // history; a clone starts cold and rebuilds on first use.
            stream: StreamState::default(),
            // Shared handles: a clone records into the same metrics.
            telemetry: self.telemetry.clone(),
        }
    }
}

impl SparseDecoder {
    /// Builds the decoder for stabilizer type `ty` of `code`.
    #[must_use]
    pub fn new(code: &SurfaceCode, ty: StabilizerType) -> Self {
        Self {
            ty,
            graph: code.detector_graph(ty).clone(),
            scratch: Mutex::new(SparseScratch::new()),
            pool: None,
            arena_pool: Mutex::new(Vec::new()),
            stream: StreamState::default(),
            telemetry: None,
        }
    }

    /// The stabilizer type this decoder serves.
    #[must_use]
    pub fn stabilizer_type(&self) -> StabilizerType {
        self.ty
    }

    /// Dispatches this decoder's independent ≥3-event cluster solves
    /// onto `pool` (results are folded in cluster order, so every
    /// worker count — including the `BTWC_WORKERS=1` override — yields
    /// bit-identical corrections).
    pub fn set_pool(&mut self, pool: Arc<Pool>) {
        self.pool = Some(pool);
    }

    /// Builder form of [`SparseDecoder::set_pool`].
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<Pool>) -> Self {
        self.set_pool(pool);
        self
    }

    /// Attach a metrics registry: from here on every decode records
    /// stream fast-path classifications, replayed-vs-solved cluster
    /// counts, per-cluster solve sizes, and warm-start accept/reject
    /// reasons under the `sparse.` prefix. All sparse metrics are
    /// cycle-domain: the per-cluster decisions driving them are
    /// deterministic, so totals are identical for any pool worker
    /// count.
    pub fn attach_telemetry(&mut self, registry: &MetricsRegistry) {
        self.telemetry = Some(SparseTelemetry::register(registry));
    }

    /// Builder form of [`SparseDecoder::attach_telemetry`].
    #[must_use]
    pub fn with_telemetry(mut self, registry: &MetricsRegistry) -> Self {
        self.attach_telemetry(registry);
        self
    }

    /// Decodes an explicit set of detection events into a correction.
    ///
    /// # Panics
    ///
    /// Panics if any event references an out-of-range ancilla.
    #[must_use]
    pub fn decode_events(&self, events: &[DetectionEvent]) -> Correction {
        let mut scratch = self.scratch.lock().unwrap_or_else(PoisonError::into_inner);
        Self::decode_events_with(
            &self.graph,
            events,
            &mut scratch,
            self.pool.as_deref(),
            &self.arena_pool,
            None,
            self.telemetry.as_ref(),
        )
        .0
    }

    /// [`SparseDecoder::decode_events`] through exclusive access — no
    /// mutex traffic (the per-thread decode path of the simulators).
    ///
    /// # Panics
    ///
    /// Panics if any event references an out-of-range ancilla.
    #[must_use]
    pub fn decode_events_mut(&mut self, events: &[DetectionEvent]) -> Correction {
        self.decode_events_weighted(events).0
    }

    /// [`SparseDecoder::decode_events_mut`] also reporting the total
    /// space-time weight of the matching — the exactness witness the
    /// test suite compares against the dense decoder and the brute-force
    /// reference.
    ///
    /// # Panics
    ///
    /// Panics if any event references an out-of-range ancilla.
    #[must_use]
    pub fn decode_events_weighted(&mut self, events: &[DetectionEvent]) -> (Correction, i64) {
        let scratch = self.scratch.get_mut().unwrap_or_else(PoisonError::into_inner);
        Self::decode_events_with(
            &self.graph,
            events,
            scratch,
            self.pool.as_deref(),
            &self.arena_pool,
            None,
            self.telemetry.as_ref(),
        )
    }

    /// Decodes a whole window of measurement rounds. Windows without
    /// detection events are dismissed by the window's O(1) event
    /// counter before the scratch lock is taken; otherwise the event
    /// diff lands in a reused buffer.
    #[must_use]
    pub fn decode_window(&self, history: &RoundHistory) -> Correction {
        if history.detection_event_count() == 0 {
            return Correction::new();
        }
        let mut scratch = self.scratch.lock().unwrap_or_else(PoisonError::into_inner);
        let mut events = std::mem::take(&mut scratch.events);
        history.detection_events_into(&mut events);
        let out = Self::decode_events_with(
            &self.graph,
            &events,
            &mut scratch,
            self.pool.as_deref(),
            &self.arena_pool,
            None,
            self.telemetry.as_ref(),
        )
        .0;
        scratch.events = events;
        out
    }

    /// [`SparseDecoder::decode_window`] through exclusive access (the
    /// simulators' lock-free path).
    #[must_use]
    pub fn decode_window_mut(&mut self, history: &RoundHistory) -> Correction {
        self.decode_window_weighted(history).0
    }

    /// [`SparseDecoder::decode_window_mut`] also reporting the committed
    /// matching's total space-time weight.
    #[must_use]
    pub fn decode_window_weighted(&mut self, history: &RoundHistory) -> (Correction, i64) {
        if history.detection_event_count() == 0 {
            return (Correction::new(), 0);
        }
        let scratch = self.scratch.get_mut().unwrap_or_else(PoisonError::into_inner);
        let mut events = std::mem::take(&mut scratch.events);
        history.detection_events_into(&mut events);
        let out = Self::decode_events_with(
            &self.graph,
            &events,
            scratch,
            self.pool.as_deref(),
            &self.arena_pool,
            None,
            self.telemetry.as_ref(),
        );
        scratch.events = events;
        out
    }

    /// Decodes `window` as the latest position of a sliding stream (see
    /// [`ComplexDecoder::decode_stream_mut`]): when `window` is a
    /// forward slide of the window decoded by the previous call, region
    /// collisions and committed cluster matchings are reused and only
    /// the rounds that entered or left are reprocessed. On any other
    /// input the result is identical to
    /// [`SparseDecoder::decode_window_weighted`] — the batch kernel
    /// runs (priming the stream state for the next slide), so the
    /// method is always safe to call.
    #[must_use]
    pub fn decode_stream_weighted(&mut self, window: &RoundHistory) -> (Correction, i64) {
        let scratch = self.scratch.get_mut().unwrap_or_else(PoisonError::into_inner);
        let graph = &self.graph;
        let pool = self.pool.as_deref();
        let telemetry = self.telemetry.as_ref();
        match self.stream.classify(window) {
            Slide::Quiet => {
                // Nothing entered, nothing left, the re-base was a
                // no-op: the previous matching stands verbatim.
                if let Some(tel) = telemetry {
                    tel.quiet_slides.inc();
                }
                self.stream.note_quiet(window);
                (self.stream.cached.clone(), self.stream.cached_weight)
            }
            Slide::Rebuild => {
                if let Some(tel) = telemetry {
                    tel.rebuilds.inc();
                }
                self.stream.begin_rebuild(window);
                let events = &self.stream.events;
                let epoch = self.stream.epoch;
                let (corr, total) = {
                    let solutions = &mut self.stream.solutions;
                    let free_slots = &mut self.stream.free_slots;
                    let sol_of = &mut self.stream.sol_of;
                    let mut rec =
                        |members: &[u32], w: i64, flips: &[usize], warm: Option<WarmExport<'_>>| {
                            record_solution(
                                solutions, free_slots, sol_of, epoch, members, w, flips, warm,
                            );
                        };
                    Self::decode_events_with(
                        graph,
                        events,
                        scratch,
                        pool,
                        &self.arena_pool,
                        Some(&mut rec),
                        telemetry,
                    )
                };
                // The kernel's collision edges index the same event
                // order — they seed the next slide's surviving set.
                self.stream.edges.clear();
                self.stream.edges.extend_from_slice(&scratch.collisions);
                self.stream.commit(&corr, total);
                (corr, total)
            }
            Slide::Incremental { retired } => {
                if let Some(tel) = telemetry {
                    tel.incremental_slides.inc();
                }
                let (front_dirty, tail_start) = self.stream.apply_slide(window, retired);
                scan_dirty_collisions(
                    graph,
                    &self.stream.events,
                    front_dirty,
                    tail_start,
                    &mut self.stream.edges,
                );

                let n = self.stream.events.len();
                if n == 0 {
                    let corr = Correction::new();
                    self.stream.sweep();
                    self.stream.commit(&corr, 0);
                    return (corr, 0);
                }

                // Re-derive the cluster partition from the maintained
                // edge set (linear in events + edges — the expensive
                // discovery above only touched dirty events).
                scratch.prepare(n);
                for e in &self.stream.edges {
                    scratch.union(e.u, e.v);
                }
                for i in 0..n as u32 {
                    let r = scratch.find(i);
                    scratch.root.push(r);
                }
                scratch.order.extend(0..n as u32);
                let SparseScratch {
                    root,
                    order,
                    local_events,
                    local_id,
                    cluster_edges,
                    pairs,
                    arena,
                    warm,
                    warm_seen,
                    ..
                } = scratch;
                order.sort_unstable_by_key(|&i| root[i as usize]);
                self.stream.edges.sort_unstable_by_key(|e| root[e.u as usize]);
                let (order, root) = (&*order, &*root);
                let events = &self.stream.events;
                let edges = &self.stream.edges;
                let sol_of = &mut self.stream.sol_of;
                let solutions = &mut self.stream.solutions;
                let free_slots = &mut self.stream.free_slots;
                let epoch = self.stream.epoch;

                let mut flips: Vec<usize> = Vec::new();
                let mut total = 0i64;
                let mut tasks: Vec<(usize, usize, usize, usize)> = Vec::new();
                let mut task_hints: Vec<Option<WarmHint>> = Vec::new();
                // Replays dominate a quiet slide (every untouched
                // cluster is one), so batch them into one atomic add
                // instead of an RMW per cluster.
                let mut replayed = 0u64;
                if local_id.len() < n {
                    local_id.resize(n, 0);
                }
                let (mut start, mut edge_at) = (0usize, 0usize);
                while start < n {
                    let cluster_root = root[order[start] as usize];
                    let mut end = start + 1;
                    while end < n && root[order[end] as usize] == cluster_root {
                        end += 1;
                    }
                    let mut edge_end = edge_at;
                    while edge_end < edges.len() && root[edges[edge_end].u as usize] == cluster_root
                    {
                        edge_end += 1;
                    }
                    let members = &order[start..end];
                    let size = end - start;
                    // Cache hit: every member still carries the same
                    // solution slot and the cluster kept its size —
                    // then membership and edges are provably unchanged
                    // (slide-inserted events carry `NO_SOL`, dropped
                    // members shrink the size, new edges only touch
                    // `NO_SOL` events), and weights and flips are
                    // invariant under the uniform round shift. Replay
                    // the committed matching.
                    let s0 = sol_of[members[0] as usize];
                    let hit = s0 != NO_SOL
                        && solutions[s0 as usize].size as usize == size
                        && members.iter().all(|&m| sol_of[m as usize] == s0);
                    if hit {
                        replayed += 1;
                        let sol = &mut solutions[s0 as usize];
                        sol.last_seen = epoch;
                        total += sol.weight;
                        flips.extend_from_slice(&sol.flips);
                    } else {
                        // Miss: re-solve, warm-started from whatever
                        // cached solutions the surviving members still
                        // carry — for the window-spanning clusters of
                        // operational noise, the slide leaves most of
                        // the previous matching and duals valid, and the
                        // solver only re-derives the few augmentations
                        // around the dirty events.
                        let solve_warm = size >= 3;
                        if solve_warm {
                            for (li, &gi) in members.iter().enumerate() {
                                local_id[gi as usize] = li as u32;
                            }
                            assemble_warm(
                                members,
                                root,
                                cluster_root,
                                local_id,
                                sol_of,
                                solutions,
                                warm,
                                warm_seen,
                            );
                        }
                        if pool.is_some() && solve_warm {
                            tasks.push((start, end, edge_at, edge_end));
                            task_hints.push(warm.has_in.then(|| {
                                (
                                    warm.duals_in.clone(),
                                    warm.pairs_in.clone(),
                                    warm.w_base_in,
                                    warm.blossoms_in.clone(),
                                )
                            }));
                        } else {
                            let flip_start = flips.len();
                            let w = solve_cluster(
                                graph,
                                events,
                                members,
                                &edges[edge_at..edge_end],
                                local_events,
                                local_id,
                                cluster_edges,
                                pairs,
                                arena,
                                &mut flips,
                                solve_warm.then_some(&mut *warm),
                                telemetry,
                            );
                            total += w;
                            record_solution(
                                solutions,
                                free_slots,
                                sol_of,
                                epoch,
                                members,
                                w,
                                &flips[flip_start..],
                                if solve_warm { warm.export() } else { None },
                            );
                        }
                    }
                    edge_at = edge_end;
                    start = end;
                }
                if replayed > 0 {
                    if let Some(tel) = telemetry {
                        tel.clusters_replayed.add(replayed);
                    }
                }
                if !tasks.is_empty() {
                    // btwc-allow(PANIC-HOT): control-flow invariant —
                    // `tasks` is only pushed to on the `pool.is_some()`
                    // branch above, so the take cannot fail.
                    let pool = pool.expect("tasks are only collected with a pool");
                    let arena_pool = &self.arena_pool;
                    let results = pool.map(&tasks, |i, &(s, e, ea, ee)| {
                        solve_cluster_task(
                            graph,
                            events,
                            &order[s..e],
                            &edges[ea..ee],
                            arena_pool,
                            task_hints[i].as_ref(),
                            telemetry,
                        )
                    });
                    for (ti, (w, task_flips, export)) in results.into_iter().enumerate() {
                        let (s, e, ..) = tasks[ti];
                        total += w;
                        record_solution(
                            solutions,
                            free_slots,
                            sol_of,
                            epoch,
                            &order[s..e],
                            w,
                            &task_flips,
                            export.as_ref().map(|(d, p, b, bl)| (&d[..], &p[..], *b, &bl[..])),
                        );
                        flips.extend_from_slice(&task_flips);
                    }
                }

                self.stream.sweep();
                let corr = Correction::from_flips(flips);
                self.stream.commit(&corr, total);
                (corr, total)
            }
        }
    }

    /// The decode kernel: merge colliding regions, then solve each
    /// cluster exactly — ≥3-event clusters on the pool when one is set
    /// (folded in cluster order: bit-identical to inline), and each
    /// solved cluster reported to `recorder` (member indices, weight,
    /// flips) when the stream state wants to memoize it.
    #[allow(clippy::type_complexity)]
    pub(crate) fn decode_events_with(
        graph: &DetectorGraph,
        events: &[DetectionEvent],
        scratch: &mut SparseScratch,
        pool: Option<&Pool>,
        arena_pool: &Mutex<Vec<BlossomArena>>,
        mut recorder: Option<&mut dyn FnMut(&[u32], i64, &[usize], Option<WarmExport<'_>>)>,
        telemetry: Option<&SparseTelemetry>,
    ) -> (Correction, i64) {
        let n = events.len();
        if n == 0 {
            return (Correction::new(), 0);
        }
        for ev in events {
            assert!(ev.ancilla < graph.num_nodes(), "event ancilla {} out of range", ev.ancilla);
        }
        scratch.prepare(n);
        merge_colliding_regions(graph, events, scratch);

        // Resolve each event's cluster root, then sort event indices by
        // root so every cluster is a contiguous run (in-place sort of a
        // recycled index buffer — no per-decode allocation).
        for i in 0..n as u32 {
            let r = scratch.find(i);
            scratch.root.push(r);
        }
        let SparseScratch {
            root,
            order,
            collisions,
            local_events,
            local_id,
            cluster_edges,
            pairs,
            arena,
            warm,
            ..
        } = scratch;
        order.sort_unstable_by_key(|&i| root[i as usize]);
        // Group the collision edges the same way: every edge is
        // intra-cluster by construction, so sorting by one endpoint's
        // root makes each cluster's edges one contiguous run, consumed
        // in step with the cluster walk below.
        collisions.sort_unstable_by_key(|e| root[e.u as usize]);
        let (order, collisions, root) = (&*order, &*collisions, &*root);

        let mut flips = Vec::new();
        let mut total = 0i64;
        let mut tasks: Vec<(usize, usize, usize, usize)> = Vec::new();
        let mut start = 0usize;
        let mut edge_at = 0usize;
        while start < n {
            let cluster_root = root[order[start] as usize];
            let mut end = start + 1;
            while end < n && root[order[end] as usize] == cluster_root {
                end += 1;
            }
            let mut edge_end = edge_at;
            while edge_end < collisions.len()
                && root[collisions[edge_end].u as usize] == cluster_root
            {
                edge_end += 1;
            }
            if pool.is_some() && end - start >= 3 {
                // Big knots go to the pool; singletons and pairs are
                // cheaper to solve than to schedule.
                tasks.push((start, end, edge_at, edge_end));
            } else {
                let flip_start = flips.len();
                // Batch decodes start the solver cold, but a recording
                // caller (the stream rebuild) wants the solver's final
                // state exported for the next slide's warm start.
                let use_warm = recorder.is_some();
                if use_warm {
                    warm.has_in = false;
                }
                let w = solve_cluster(
                    graph,
                    events,
                    &order[start..end],
                    &collisions[edge_at..edge_end],
                    local_events,
                    local_id,
                    cluster_edges,
                    pairs,
                    arena,
                    &mut flips,
                    if use_warm { Some(&mut *warm) } else { None },
                    telemetry,
                );
                total += w;
                if let Some(rec) = recorder.as_deref_mut() {
                    rec(&order[start..end], w, &flips[flip_start..], warm.export());
                }
            }
            edge_at = edge_end;
            start = end;
        }
        if !tasks.is_empty() {
            // btwc-allow(PANIC-HOT): control-flow invariant — `tasks`
            // is only pushed to on the `pool.is_some()` branch above,
            // so the take cannot fail.
            let pool = pool.expect("tasks are only collected with a pool");
            let results = pool.map(&tasks, |_i, &(s, e, ea, ee)| {
                solve_cluster_task(
                    graph,
                    events,
                    &order[s..e],
                    &collisions[ea..ee],
                    arena_pool,
                    None,
                    telemetry,
                )
            });
            // Fold in cluster (task) order: deterministic for any
            // worker count, and `Correction::from_flips` normalizes
            // flip order, so pooled == inline bit-for-bit.
            for (ti, (w, task_flips, export)) in results.into_iter().enumerate() {
                let (s, e, ..) = tasks[ti];
                total += w;
                if let Some(rec) = recorder.as_deref_mut() {
                    rec(
                        &order[s..e],
                        w,
                        &task_flips,
                        export.as_ref().map(|(d, p, b, bl)| (&d[..], &p[..], *b, &bl[..])),
                    );
                }
                flips.extend_from_slice(&task_flips);
            }
        }
        (Correction::from_flips(flips), total)
    }
}

/// Recycled buffers carrying blossom warm-start state around one
/// cluster solve: the assembled input hint (from the surviving cached
/// solutions of the cluster's events) and the solver's exported output
/// state (stored back into the cache for the next slide).
/// A solver warm export in `record_solution` form:
/// `(duals, pairs, w_base, blossoms)`.
pub(crate) type WarmExport<'a> = (&'a [i64], &'a [(u32, u32)], i64, &'a [StoredBlossom]);

#[derive(Debug, Default)]
pub(crate) struct WarmBufs {
    duals_in: Vec<i64>,
    pairs_in: Vec<(u32, u32)>,
    blossoms_in: Vec<StoredBlossom>,
    w_base_in: i64,
    has_in: bool,
    duals_out: Vec<i64>,
    pairs_out: Vec<(u32, u32)>,
    blossoms_out: Vec<StoredBlossom>,
    w_base_out: i64,
    has_out: bool,
}

impl WarmBufs {
    /// The last solve's exported warm state, in `record_solution` form.
    fn export(&self) -> Option<WarmExport<'_>> {
        self.has_out.then(|| {
            (&self.duals_out[..], &self.pairs_out[..], self.w_base_out, &self.blossoms_out[..])
        })
    }
}

/// Assembles a [`WarmStart`] hint for the cluster `members` (local ids
/// = positions, two-copy twins at `+k`) out of the cached solutions its
/// events carried into this decode. A slide leaves most of a big
/// cluster's events pointing at last decode's solved slot(s); their
/// exported duals and matched pairs — remapped to the new local ids,
/// shifted onto a common complement base, with retired/dirty endpoints
/// dropped — seed the solver so it only re-derives the matching around
/// what actually changed. Assembly is purely a read of the slab; the
/// solver treats the hint as untrusted (see [`WarmStart`]), so a stale
/// entry can cost time but never exactness.
#[allow(clippy::too_many_arguments)]
fn assemble_warm(
    members: &[u32],
    root: &[u32],
    cluster_root: u32,
    local_id: &[u32],
    sol_of: &[u32],
    solutions: &[CachedSolution],
    bufs: &mut WarmBufs,
    seen: &mut Vec<u32>,
) {
    let k = members.len();
    bufs.has_in = false;
    bufs.duals_in.clear();
    bufs.pairs_in.clear();
    bufs.blossoms_in.clear();
    seen.clear();
    let mut w_base = 0i64;
    for &m in members {
        let s = sol_of[m as usize];
        if s == NO_SOL || seen.contains(&s) {
            continue;
        }
        let sol = &solutions[s as usize];
        if sol.duals.is_empty() {
            continue;
        }
        seen.push(s);
        w_base = w_base.max(sol.w_base);
    }
    if seen.is_empty() {
        return;
    }
    bufs.duals_in.resize(2 * k, NO_HINT);
    for &s in seen.iter() {
        let sol = &solutions[s as usize];
        let k_old = sol.size as usize;
        debug_assert_eq!(sol.duals.len(), 2 * k_old);
        let shift = 2 * (w_base - sol.w_base);
        // A stored member's warm state carries over iff the event
        // survived (not tombstoned), still points at this slot, and
        // landed in this cluster — then `local_id` knows its new
        // position, and its boundary twin follows at `+k`.
        let new_local = |x: u32| -> Option<usize> {
            let (ol, twin) =
                if (x as usize) < k_old { (x as usize, 0) } else { (x as usize - k_old, k) };
            let g = sol.members[ol];
            if g == DEAD_MEMBER {
                return None;
            }
            let gi = g as usize;
            (sol_of[gi] == s && root[gi] == cluster_root).then(|| local_id[gi] as usize + twin)
        };
        for (ol, &g) in sol.members.iter().enumerate() {
            if let Some(nl) = new_local(ol as u32) {
                let gi = g as usize;
                debug_assert_eq!(members[nl], gi as u32);
                // NO_HINT sentinels stay sentinels — a shifted
                // sentinel would read as a real (and absurd) dual.
                let (de, dt) = (sol.duals[ol], sol.duals[ol + k_old]);
                bufs.duals_in[nl] = if de == NO_HINT { NO_HINT } else { de + shift };
                bufs.duals_in[nl + k] = if dt == NO_HINT { NO_HINT } else { dt + shift };
            }
        }
        for &(a, b) in &sol.lpairs {
            if let (Some(na), Some(nb)) = (new_local(a), new_local(b)) {
                bufs.pairs_in.push((na as u32, nb as u32));
            }
        }
        // Blossom subtrees ride along under the same remap: one with a
        // retired or strayed member flattens its z into the duals just
        // assembled above (which is why duals go first).
        remap_stored_blossoms(
            &sol.blossoms,
            |x| new_local(x).map(|nl| nl as u32),
            &mut bufs.duals_in,
            &mut bufs.blossoms_in,
        );
    }
    bufs.w_base_in = w_base;
    bufs.has_in = true;
}

/// Solves one cluster exactly, appending its data-qubit flips to
/// `flips` and returning its matching weight. `members` are indices
/// into `events` (the cluster's events, in walk order); `collisions`
/// its collision edges (global event indices). With `warm`, a ≥3-event
/// solve starts from the assembled hint (when one is present) and
/// exports its final state back into the buffers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_cluster(
    graph: &DetectorGraph,
    events: &[DetectionEvent],
    members: &[u32],
    collisions: &[ClusterEdge],
    local_events: &mut Vec<DetectionEvent>,
    local_id: &mut Vec<u32>,
    cluster_edges: &mut Vec<ClusterEdge>,
    pairs: &mut Vec<(usize, usize)>,
    arena: &mut BlossomArena,
    flips: &mut Vec<usize>,
    mut warm: Option<&mut WarmBufs>,
    telemetry: Option<&SparseTelemetry>,
) -> i64 {
    if let Some(w) = warm.as_deref_mut() {
        debug_assert!(!w.has_in || members.len() >= 3, "warm hints are for arena solves");
        w.has_out = false;
    }
    if let Some(tel) = telemetry {
        tel.clusters_solved.inc();
        tel.cluster_size.record(members.len() as u64);
    }
    match members.len() {
        0 => 0,
        // A lone defect: its region met nobody within its own
        // boundary distance, so the boundary exit is optimal.
        1 => {
            let ev = &events[members[0] as usize];
            flips.extend(graph.path_to_boundary(ev.ancilla));
            i64::from(graph.boundary_distance(ev.ancilla))
        }
        // A pair: the direct edge against two boundary exits.
        2 => {
            let (u, v) = (&events[members[0] as usize], &events[members[1] as usize]);
            let direct =
                i64::from(graph.distance(u.ancilla, v.ancilla)) + u.round.abs_diff(v.round) as i64;
            let exits = i64::from(graph.boundary_distance(u.ancilla))
                + i64::from(graph.boundary_distance(v.ancilla));
            if direct <= exits {
                flips.extend(graph.path(u.ancilla, v.ancilla));
                direct
            } else {
                flips.extend(graph.path_to_boundary(u.ancilla));
                flips.extend(graph.path_to_boundary(v.ancilla));
                exits
            }
        }
        // A bigger knot: the in-solver sparse blossom over the
        // cluster's *collision edges* plus boundary twins. The
        // two-copy construction keeps the graph sparse: each
        // event connects to its own twin (weight = its boundary
        // exit), and every collision edge is mirrored between
        // the twins at weight zero, so however many events pair
        // up, the leftover twins can always pair off for free —
        // an optimal matching never needs an edge the region
        // scan did not discover.
        k => {
            if local_id.len() < events.len() {
                local_id.resize(events.len(), 0);
            }
            local_events.clear();
            local_events.extend(members.iter().map(|&i| events[i as usize]));
            for (li, &gi) in members.iter().enumerate() {
                local_id[gi as usize] = li as u32;
            }
            cluster_edges.clear();
            for e in collisions {
                let (lu, lv) = (local_id[e.u as usize], local_id[e.v as usize]);
                cluster_edges.push(ClusterEdge::new(lu, lv, e.weight));
                cluster_edges.push(ClusterEdge::new(lu + k as u32, lv + k as u32, 0));
            }
            for (li, ev) in local_events.iter().enumerate() {
                cluster_edges.push(ClusterEdge::new(
                    li as u32,
                    (li + k) as u32,
                    i64::from(graph.boundary_distance(ev.ancilla)),
                ));
            }
            let hinted = warm.as_deref().is_some_and(|w| w.has_in);
            let total = match warm {
                Some(w) => {
                    let hint = WarmStart {
                        duals: &w.duals_in,
                        pairs: &w.pairs_in,
                        w_base: w.w_base_in,
                        blossoms: &w.blossoms_in,
                    };
                    let t =
                        arena.solve_warm(2 * k, cluster_edges, pairs, w.has_in.then_some(&hint));
                    w.w_base_out =
                        arena.export_warm(&mut w.duals_out, &mut w.pairs_out, &mut w.blossoms_out);
                    w.has_out = true;
                    t
                }
                None => arena.solve(2 * k, cluster_edges, pairs),
            };
            if let Some(tel) = telemetry {
                if hinted {
                    tel.warm_hinted.inc();
                } else {
                    tel.warm_cold.inc();
                }
                let st = arena.warm_seed_stats();
                tel.warm_offered.add(st.subtrees_offered);
                tel.warm_imported.add(st.subtrees_imported);
                tel.warm_rejected_structure.add(st.rejected_structure);
                tel.warm_rejected_feasibility.add(st.rejected_feasibility);
                tel.warm_rejected_tightness.add(st.rejected_tightness);
            }
            project_pairs(graph, local_events, pairs, flips);
            total
        }
    }
}

/// The warm state a pooled cluster task carries in and out: the
/// assembled hint (owned, so the task borrows nothing mutable) and the
/// solver's export, in `(duals, pairs, w_base, blossoms)` form.
type WarmHint = (Vec<i64>, Vec<(u32, u32)>, i64, Vec<StoredBlossom>);

/// [`solve_cluster`] packaged as one pool task: takes a recycled arena
/// from (and returns it to) the shared arena pool, and reports the
/// cluster's weight, flips, and exported warm state for the in-order
/// fold on the caller.
fn solve_cluster_task(
    graph: &DetectorGraph,
    events: &[DetectionEvent],
    members: &[u32],
    collisions: &[ClusterEdge],
    arena_pool: &Mutex<Vec<BlossomArena>>,
    hint: Option<&WarmHint>,
    telemetry: Option<&SparseTelemetry>,
) -> (i64, Vec<usize>, Option<WarmHint>) {
    let mut arena =
        arena_pool.lock().unwrap_or_else(PoisonError::into_inner).pop().unwrap_or_default();
    let mut local_events = Vec::new();
    let mut local_id = Vec::new();
    let mut cluster_edges = Vec::new();
    let mut pairs = Vec::new();
    let mut flips = Vec::new();
    let mut warm = WarmBufs::default();
    if let Some((duals, wpairs, w_base, blossoms)) = hint {
        warm.duals_in.extend_from_slice(duals);
        warm.pairs_in.extend_from_slice(wpairs);
        warm.blossoms_in.extend_from_slice(blossoms);
        warm.w_base_in = *w_base;
        warm.has_in = true;
    }
    let weight = solve_cluster(
        graph,
        events,
        members,
        collisions,
        &mut local_events,
        &mut local_id,
        &mut cluster_edges,
        &mut pairs,
        &mut arena,
        &mut flips,
        Some(&mut warm),
        telemetry,
    );
    arena_pool.lock().unwrap_or_else(PoisonError::into_inner).push(arena);
    let export = warm.has_out.then_some((
        warm.duals_out,
        warm.pairs_out,
        warm.w_base_out,
        warm.blossoms_out,
    ));
    (weight, flips, export)
}

impl ComplexDecoder for SparseDecoder {
    fn decode_window(&self, window: &RoundHistory) -> Correction {
        SparseDecoder::decode_window(self, window)
    }

    fn decode_window_mut(&mut self, window: &RoundHistory) -> Correction {
        SparseDecoder::decode_window_mut(self, window)
    }

    fn decode_stream_mut(&mut self, window: &RoundHistory) -> Correction {
        self.decode_stream_weighted(window).0
    }

    fn attach_telemetry(&mut self, registry: &MetricsRegistry) {
        SparseDecoder::attach_telemetry(self, registry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btwc_lattice::DataQubit;
    use btwc_noise::SimRng;

    fn window_for(code: &SurfaceCode, errors: &[bool], rounds: usize) -> RoundHistory {
        let round = code.syndrome_of(StabilizerType::X, errors);
        let mut h = RoundHistory::new(round.len(), rounds.max(2));
        for _ in 0..rounds {
            h.push(&round);
        }
        h
    }

    #[test]
    fn empty_window_decodes_to_nothing() {
        let code = SurfaceCode::new(5);
        let decoder = SparseDecoder::new(&code, StabilizerType::X);
        let errors = vec![false; code.num_data_qubits()];
        let c = decoder.decode_window(&window_for(&code, &errors, 3));
        assert!(c.is_empty());
        assert_eq!(decoder.stabilizer_type(), StabilizerType::X);
    }

    #[test]
    fn single_interior_error_is_exactly_corrected() {
        let code = SurfaceCode::new(5);
        let decoder = SparseDecoder::new(&code, StabilizerType::X);
        let q = DataQubit::new(2, 2).index(5);
        let mut errors = vec![false; code.num_data_qubits()];
        errors[q] = true;
        let c = decoder.decode_window(&window_for(&code, &errors, 2));
        assert_eq!(c.qubits(), &[q]);
    }

    #[test]
    fn every_single_error_is_corrected_equivalently() {
        for d in [3u16, 5, 7] {
            let code = SurfaceCode::new(d);
            let decoder = SparseDecoder::new(&code, StabilizerType::X);
            for q in 0..code.num_data_qubits() {
                let mut errors = vec![false; code.num_data_qubits()];
                errors[q] = true;
                let c = decoder.decode_window(&window_for(&code, &errors, 2));
                let mut residual = errors.clone();
                c.apply_to(&mut residual);
                assert!(
                    code.syndrome_of(StabilizerType::X, &residual).iter().all(|&s| !s),
                    "d={d} q={q}: residual syndrome"
                );
                assert!(
                    !code.is_logical_error(StabilizerType::X, &residual),
                    "d={d} q={q}: logical error introduced"
                );
            }
        }
    }

    #[test]
    fn measurement_error_produces_no_correction() {
        let code = SurfaceCode::new(5);
        let decoder = SparseDecoder::new(&code, StabilizerType::X);
        let n_anc = code.num_ancillas(StabilizerType::X);
        let mut h = RoundHistory::new(n_anc, 8);
        let quiet = vec![false; n_anc];
        let mut flipped = quiet.clone();
        flipped[2] = true;
        h.push(&quiet);
        h.push(&flipped);
        h.push(&quiet);
        let c = decoder.decode_window(&h);
        assert!(c.is_empty(), "time-like pair must not touch data qubits");
    }

    #[test]
    fn below_half_distance_errors_never_cause_logical_failure() {
        for d in [3u16, 5, 7] {
            let code = SurfaceCode::new(d);
            let decoder = SparseDecoder::new(&code, StabilizerType::X);
            let t = usize::from((d - 1) / 2);
            let mut rng = SimRng::from_seed(0xFEED + u64::from(d));
            for _ in 0..400 {
                let mut errors = vec![false; code.num_data_qubits()];
                for _ in 0..t {
                    errors[rng.below(code.num_data_qubits())] = true;
                }
                let c = decoder.decode_window(&window_for(&code, &errors, 2));
                let mut residual = errors.clone();
                c.apply_to(&mut residual);
                assert!(
                    code.syndrome_of(StabilizerType::X, &residual).iter().all(|&s| !s),
                    "d={d}: residual syndrome for {errors:?}"
                );
                assert!(
                    !code.is_logical_error(StabilizerType::X, &residual),
                    "d={d}: weight<=t error mis-decoded: {errors:?}"
                );
            }
        }
    }

    // The exactness contract (sparse weight == dense weight on noisy
    // windows) is pinned by the 1000-window sweep in
    // tests/sparse_vs_dense.rs and the brute-force property suite; the
    // streaming path is pinned against both by the streamed fuzz there.

    #[test]
    fn locked_and_mut_paths_agree() {
        let code = SurfaceCode::new(7);
        let mut decoder = SparseDecoder::new(&code, StabilizerType::X);
        let mut rng = SimRng::from_seed(7);
        for _ in 0..30 {
            let mut errors = vec![false; code.num_data_qubits()];
            for _ in 0..3 {
                errors[rng.below(code.num_data_qubits())] ^= true;
            }
            let window = window_for(&code, &errors, 3);
            let locked = decoder.decode_window(&window);
            assert_eq!(locked, decoder.decode_window_mut(&window));
            let events = window.detection_events();
            assert_eq!(decoder.decode_events(&events), decoder.decode_events_mut(&events));
        }
    }

    #[test]
    fn clone_decodes_identically() {
        let code = SurfaceCode::new(5);
        let decoder = SparseDecoder::new(&code, StabilizerType::X);
        let mut errors = vec![false; code.num_data_qubits()];
        errors[7] = true;
        errors[12] = true;
        let w = window_for(&code, &errors, 2);
        assert_eq!(decoder.decode_window(&w), decoder.clone().decode_window(&w));
    }

    #[test]
    fn stream_decode_matches_batch_on_slides() {
        // Slide a window one round at a time; the streaming path must
        // agree with a from-scratch batch decode at every position.
        let code = SurfaceCode::new(7);
        let mut streaming = SparseDecoder::new(&code, StabilizerType::X);
        let mut batch = SparseDecoder::new(&code, StabilizerType::X);
        let n_anc = code.num_ancillas(StabilizerType::X);
        let mut rng = SimRng::from_seed(0x51DE);
        let mut window = RoundHistory::new(n_anc, 6);
        for _ in 0..40 {
            let bits: Vec<bool> = (0..n_anc).map(|_| rng.bernoulli(0.04)).collect();
            window.push(&bits);
            let (sc, sw) = streaming.decode_stream_weighted(&window);
            let (bc, bw) = batch.decode_window_weighted(&window);
            assert_eq!(sw, bw, "stream weight diverged from batch");
            // Equal-weight matchings may differ on ties, but both must
            // resolve the same syndrome.
            let mut rs = vec![false; code.num_data_qubits()];
            let mut rb = rs.clone();
            sc.apply_to(&mut rs);
            bc.apply_to(&mut rb);
            assert_eq!(
                code.syndrome_of(StabilizerType::X, &rs),
                code.syndrome_of(StabilizerType::X, &rb),
                "stream and batch corrections resolve different syndromes"
            );
        }
    }

    #[test]
    fn stream_decode_survives_resets_and_quiet_windows() {
        let code = SurfaceCode::new(5);
        let mut dec = SparseDecoder::new(&code, StabilizerType::X);
        let n_anc = code.num_ancillas(StabilizerType::X);
        let mut window = RoundHistory::new(n_anc, 4);
        let quiet = vec![false; n_anc];
        let mut lit = quiet.clone();
        lit[1] = true;
        // Quiet stream: cached empty result replayed.
        for _ in 0..6 {
            window.push(&quiet);
            let (c, w) = dec.decode_stream_weighted(&window);
            assert!(c.is_empty());
            assert_eq!(w, 0);
        }
        // An event enters, slides through, and retires; every position
        // must agree with a from-scratch decode.
        let mut batch = SparseDecoder::new(&code, StabilizerType::X);
        for _ in 0..6 {
            window.push(&lit);
            assert_eq!(
                dec.decode_stream_weighted(&window),
                batch.decode_window_weighted(&window),
                "stream diverged while an event slid through"
            );
        }
        // Reset jumps the coverage: next decode rebuilds.
        window.reset();
        window.push(&quiet);
        let (c2, w2) = dec.decode_stream_weighted(&window);
        assert!(c2.is_empty());
        assert_eq!(w2, 0);
    }

    #[test]
    fn pooled_cluster_solves_are_bit_identical() {
        // One window with several ≥3-event clusters, decoded with no
        // pool and with pools of 1, 2, and 8 workers: identical
        // corrections and weights everywhere.
        let code = SurfaceCode::new(11);
        let n_anc = code.num_ancillas(StabilizerType::X);
        let mut rng = SimRng::from_seed(0xB00);
        let mut window = RoundHistory::new(n_anc, 8);
        for _ in 0..8 {
            let bits: Vec<bool> = (0..n_anc).map(|_| rng.bernoulli(0.08)).collect();
            window.push(&bits);
        }
        let mut plain = SparseDecoder::new(&code, StabilizerType::X);
        let reference = plain.decode_window_weighted(&window);
        for workers in [1usize, 2, 8] {
            let mut pooled = SparseDecoder::new(&code, StabilizerType::X)
                .with_pool(Arc::new(Pool::new(workers)));
            assert_eq!(
                pooled.decode_window_weighted(&window),
                reference,
                "pooled decode diverged at {workers} workers"
            );
            assert_eq!(
                pooled.decode_stream_weighted(&window),
                reference,
                "pooled stream decode diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn telemetry_counts_every_stream_classification() {
        let code = SurfaceCode::new(7);
        let registry = btwc_telemetry::MetricsRegistry::new();
        let mut dec = SparseDecoder::new(&code, StabilizerType::X).with_telemetry(&registry);
        let n_anc = code.num_ancillas(StabilizerType::X);
        let mut rng = SimRng::from_seed(0x7E1E);
        let mut window = RoundHistory::new(n_anc, 6);
        let calls = 30u64;
        for _ in 0..calls {
            let bits: Vec<bool> = (0..n_anc).map(|_| rng.bernoulli(0.05)).collect();
            window.push(&bits);
            let _ = dec.decode_stream_weighted(&window);
        }
        let snap = registry.snapshot();
        let quiet = snap.get_counter("sparse.stream.quiet_slides").unwrap();
        let incr = snap.get_counter("sparse.stream.incremental_slides").unwrap();
        let rebuilds = snap.get_counter("sparse.stream.rebuilds").unwrap();
        assert_eq!(quiet + incr + rebuilds, calls, "every call classifies exactly once");
        assert!(rebuilds >= 1, "first call must rebuild");
        assert!(snap.get_counter("sparse.clusters_solved").unwrap() > 0);
        match snap.get("sparse.cluster_solve_size").unwrap() {
            btwc_telemetry::MetricValue::Histogram { count, .. } => {
                assert_eq!(*count, snap.get_counter("sparse.clusters_solved").unwrap());
            }
            other => panic!("unexpected metric value {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_event_rejected() {
        let code = SurfaceCode::new(3);
        let decoder = SparseDecoder::new(&code, StabilizerType::X);
        let _ = decoder.decode_events(&[DetectionEvent { ancilla: 999, round: 0 }]);
    }
}
