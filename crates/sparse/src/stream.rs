//! Persistent state for incremental sliding-window decoding.
//!
//! A [`crate::SparseDecoder`] decoding a **stream** — successive calls
//! on the same [`RoundHistory`] as it slides forward — keeps everything
//! the previous decode discovered in a [`StreamState`] and only redoes
//! the work the slide invalidated:
//!
//! * **events** are stored at *absolute* stream rounds, so surviving
//!   events need no rewriting at all when the window slides: retiring
//!   rounds drop a sorted prefix, the re-based front round replaces its
//!   events with the round's lit bits (the new all-zero-baseline diff),
//!   and appended rounds push a sorted suffix. Both the replaced prefix
//!   and the appended suffix are **dirty**; everything between is
//!   untouched.
//! * **collision edges** survive verbatim when both endpoints survive:
//!   rounds shift uniformly, so round gaps, boundary distances, and
//!   therefore the collision inequality and edge weights are all
//!   invariant. Dropped endpoints take their edges with them (a
//!   `retain` + uniform index remap); only dirty events are re-scanned
//!   ([`crate::regions::scan_dirty_collisions`]).
//! * **cluster matchings** are memoized per cluster in a slab of
//!   [`CachedSolution`]s: a cluster whose members all carry the same
//!   solution slot, with a matching member count, is provably the same
//!   subproblem it was last time (same members, same edges, weights
//!   shift-invariant, flips purely spatial) and its committed matching
//!   is replayed without solving. Slots not referenced by the current
//!   window are reclaimed by a mark-and-sweep keyed on a decode epoch.
//!
//! A **quiet slide** — every retired round carried zero events and
//! every appended round adds none — changes nothing at all (an all-zero
//! retired prefix means the re-base is a no-op), so the previous
//! decode's result is returned verbatim from a one-clone fast path.
//!
//! The state recognises a reusable call by the window's
//! `(stream_id, start_round, len)` coverage: within one stream id
//! retained rounds are immutable and only ever slide forward, so any
//! other shape (fresh window, clone, [`RoundHistory::reset`] jump,
//! backwards movement) falls back to the batch kernel — which also
//! (re)fills this state, priming the next slide.

use btwc_syndrome::{Correction, DetectionEvent, RoundHistory};

use crate::blossom::ClusterEdge;

/// Sentinel for "event has no cached cluster solution".
pub(crate) const NO_SOL: u32 = u32::MAX;

/// Sentinel in [`CachedSolution::members`] for a member that retired
/// (its warm state is dead, the rest of the slot's may still be used).
pub(crate) const DEAD_MEMBER: u32 = u32::MAX;

/// One committed per-cluster matching, replayable while its cluster
/// survives unchanged.
#[derive(Debug, Default)]
pub(crate) struct CachedSolution {
    /// Number of events the solved cluster had (a hit requires the
    /// current cluster to match — a shrunk cluster that lost members to
    /// retirement keeps the slot id but fails this check).
    pub(crate) size: u32,
    /// Committed matching weight of the cluster.
    pub(crate) weight: i64,
    /// Committed data-qubit flips (spatial only — invariant under the
    /// uniform round shift of a slide).
    pub(crate) flips: Vec<usize>,
    /// The solved cluster's members as *current* event indices, in the
    /// local-id order of the solve ([`StreamState::apply_slide`] remaps
    /// them; retired members become [`DEAD_MEMBER`]). The anchor that
    /// lets `duals`/`lpairs` survive slides.
    pub(crate) members: Vec<u32>,
    /// Final per-node blossom duals of the cluster's two-copy solve
    /// (`2 * size` entries: events then boundary twins, in member
    /// order). Empty for clusters solved without the blossom (< 3
    /// events) — they carry no warm state.
    pub(crate) duals: Vec<i64>,
    /// Matched pairs of the two-copy solve, as local node ids.
    pub(crate) lpairs: Vec<(u32, u32)>,
    /// Surviving blossoms of the two-copy solve (local node ids), for
    /// structural re-instantiation by the next warm start.
    pub(crate) blossoms: Vec<crate::blossom::StoredBlossom>,
    /// Complement base the duals were exported under.
    pub(crate) w_base: i64,
    /// Decode epoch that last referenced this slot (mark for the
    /// sweep); dead slots are recycled through the free list.
    pub(crate) last_seen: u64,
    /// Whether the slot is currently on the free list.
    pub(crate) free: bool,
}

/// How a window relates to the previously decoded stream position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Slide {
    /// Not a forward slide of the last-decoded window: decode from
    /// scratch (and re-prime the stream state).
    Rebuild,
    /// A forward slide that changes no detection events: the previous
    /// result stands.
    Quiet,
    /// A forward slide retiring `retired` rounds off the back; events,
    /// edges, and cluster solutions carry over incrementally.
    Incremental { retired: usize },
}

/// Everything a [`crate::SparseDecoder`] persists between stream
/// decodes. `Default` is the invalid (never-decoded) state.
#[derive(Debug, Default)]
pub(crate) struct StreamState {
    /// Whether the coverage below describes a completed decode.
    valid: bool,
    stream_id: u64,
    start: u64,
    len: usize,
    /// Detection events of the covered window at **absolute** stream
    /// rounds, sorted by round (ancilla-ascending within a round) —
    /// exactly the window's enumeration order shifted by `start`.
    pub(crate) events: Vec<DetectionEvent>,
    /// Collision edges over `events` indices (every colliding pair,
    /// with its space-time weight).
    pub(crate) edges: Vec<ClusterEdge>,
    /// Cached-solution slot of each event's cluster (`NO_SOL` for
    /// events whose cluster has not been solved under this membership).
    pub(crate) sol_of: Vec<u32>,
    /// Slab of per-cluster solutions (`free_slots` holds recyclable
    /// entries).
    pub(crate) solutions: Vec<CachedSolution>,
    pub(crate) free_slots: Vec<u32>,
    /// Monotone decode counter — the mark for solution sweeping.
    pub(crate) epoch: u64,
    /// Per-round event counts of the covered window (the retired-side
    /// half of the quiet-slide test; the appended side reads the
    /// window's own counters).
    counts: Vec<u32>,
    /// Result of the last decode, replayed verbatim on quiet slides.
    pub(crate) cached: Correction,
    pub(crate) cached_weight: i64,
    /// Recycled buffer for the re-based front events of a slide.
    front_buf: Vec<DetectionEvent>,
}

impl StreamState {
    /// Classifies `window` against the last-decoded coverage.
    pub(crate) fn classify(&self, window: &RoundHistory) -> Slide {
        if !self.valid || window.stream_id() != self.stream_id {
            return Slide::Rebuild;
        }
        let new_start = window.start_round();
        if new_start < self.start {
            return Slide::Rebuild;
        }
        let retired = (new_start - self.start) as usize;
        if retired >= self.len {
            // No retained round overlaps (a reset jumps here too).
            return Slide::Rebuild;
        }
        let overlap = self.len - retired;
        if window.len() < overlap {
            // Rounds vanished from the back: not a forward slide.
            return Slide::Rebuild;
        }
        // Quiet iff every retired round carried no events (which forces
        // the retired prefix all-zero, making the front re-base a
        // no-op) and every appended round adds none.
        if self.counts[..retired].iter().all(|&c| c == 0)
            && (overlap..window.len()).all(|t| window.round_event_count(t) == 0)
        {
            Slide::Quiet
        } else {
            Slide::Incremental { retired }
        }
    }

    /// Advances the coverage over a quiet slide; all other state is
    /// untouched (and still exact, per the [`Slide::Quiet`] contract).
    pub(crate) fn note_quiet(&mut self, window: &RoundHistory) {
        self.start = window.start_round();
        self.len = window.len();
        self.refresh_counts(window);
    }

    /// Resets the state for a from-scratch decode of `window` — events
    /// are (re)filled from the window at absolute rounds; the caller
    /// runs the batch kernel and records cluster solutions through
    /// [`StreamState::record`].
    pub(crate) fn begin_rebuild(&mut self, window: &RoundHistory) {
        self.valid = true;
        self.stream_id = window.stream_id();
        self.start = window.start_round();
        self.len = window.len();
        self.refresh_counts(window);
        window.detection_events_into(&mut self.events);
        let shift = self.start as usize;
        if shift != 0 {
            for e in &mut self.events {
                e.round += shift;
            }
        }
        self.edges.clear();
        self.sol_of.clear();
        self.sol_of.resize(self.events.len(), NO_SOL);
        self.solutions.clear();
        self.free_slots.clear();
        self.epoch += 1;
    }

    /// Applies an incremental slide: drops retired events, re-bases the
    /// front round, appends the new rounds' events, and carries the
    /// surviving collision edges over (retaining + remapping indices).
    /// Dirty events (replaced front, appended tail) enter with
    /// `sol_of == NO_SOL`, which is what spoils their clusters' cache
    /// hits; their collisions are re-discovered by the caller via
    /// [`crate::regions::scan_dirty_collisions`] with the returned
    /// `(front_dirty, tail_start)` bounds.
    pub(crate) fn apply_slide(&mut self, window: &RoundHistory, retired: usize) -> (usize, usize) {
        let new_start = window.start_round() as usize;
        let overlap = self.len - retired;

        // Retired events fall off; if any round retired, the surviving
        // front round changes basis (its events become its lit bits),
        // so its old events go too.
        let dropped =
            if retired == 0 { 0 } else { self.events.partition_point(|e| e.round <= new_start) };
        self.front_buf.clear();
        if retired > 0 {
            for ancilla in window.round(0).iter_set() {
                self.front_buf.push(DetectionEvent { ancilla, round: new_start });
            }
        }
        let front_dirty = self.front_buf.len();
        self.events.splice(0..dropped, self.front_buf.drain(..));
        self.sol_of.splice(0..dropped, std::iter::repeat_n(NO_SOL, front_dirty));

        // Surviving edges keep their weights (rounds shift uniformly);
        // only their endpoint indices move, all by the same offset.
        let dropped32 = dropped as u32;
        let front32 = front_dirty as u32;
        self.edges.retain_mut(|e| {
            if e.u < dropped32 || e.v < dropped32 {
                return false;
            }
            e.u = e.u - dropped32 + front32;
            e.v = e.v - dropped32 + front32;
            true
        });

        // Cached solutions anchor their warm state (duals, pairs) on
        // member event indices: apply the same uniform remap, tombstoning
        // retired members (the slot itself may still warm-start the
        // surviving majority of its cluster).
        for sol in &mut self.solutions {
            if sol.free {
                continue;
            }
            for m in &mut sol.members {
                if *m != DEAD_MEMBER {
                    *m = if *m < dropped32 { DEAD_MEMBER } else { *m - dropped32 + front32 };
                }
            }
        }

        // Appended rounds: enumerate each new round's diff against its
        // predecessor (present for every appended round — overlap >= 1
        // is part of the Incremental contract).
        let tail_start = self.events.len();
        for t in overlap..window.len() {
            let now = window.round(t).words();
            let before = window.round(t - 1).words();
            for (w, (&a, &b)) in now.iter().zip(before).enumerate() {
                let mut diff = a ^ b;
                while diff != 0 {
                    let bit = diff.trailing_zeros() as usize;
                    diff &= diff - 1;
                    self.events
                        .push(DetectionEvent { ancilla: w * 64 + bit, round: new_start + t });
                    self.sol_of.push(NO_SOL);
                }
            }
        }

        self.stream_id = window.stream_id();
        self.start = window.start_round();
        self.len = window.len();
        self.refresh_counts(window);
        self.epoch += 1;

        #[cfg(debug_assertions)]
        {
            // The maintained event list must be indistinguishable from
            // a fresh enumeration of the slid window.
            let mut fresh = window.detection_events();
            for e in &mut fresh {
                e.round += new_start;
            }
            debug_assert_eq!(self.events, fresh, "slide maintenance diverged from fresh events");
        }

        (front_dirty, tail_start)
    }

    /// Sweeps solution slots not referenced this epoch back onto the
    /// free list (their clusters changed shape or slid away).
    pub(crate) fn sweep(&mut self) {
        for (i, sol) in self.solutions.iter_mut().enumerate() {
            if !sol.free && sol.last_seen != self.epoch {
                sol.free = true;
                sol.flips.clear();
                sol.members.clear();
                sol.duals.clear();
                sol.lpairs.clear();
                sol.blossoms.clear();
                self.free_slots.push(i as u32);
            }
        }
    }

    /// Caches the finished decode's result for quiet-slide replay.
    pub(crate) fn commit(&mut self, correction: &Correction, weight: i64) {
        self.cached = correction.clone();
        self.cached_weight = weight;
    }

    fn refresh_counts(&mut self, window: &RoundHistory) {
        self.counts.clear();
        self.counts.extend((0..window.len()).map(|t| window.round_event_count(t) as u32));
    }
}

/// Stores a solved cluster's matching in the slab and points its
/// members at the slot. A free function over the split-out slab fields
/// so the decode walk can record while the event and edge arrays are
/// immutably borrowed. `warm` is the blossom's exported
/// `(duals, pairs, w_base, blossoms)` for clusters solved by the arena
/// — the seed for warm-starting whatever cluster these events land in
/// next.
#[allow(clippy::too_many_arguments)]
pub(crate) fn record_solution(
    solutions: &mut Vec<CachedSolution>,
    free_slots: &mut Vec<u32>,
    sol_of: &mut [u32],
    epoch: u64,
    members: &[u32],
    weight: i64,
    flips: &[usize],
    warm: Option<crate::decoder::WarmExport<'_>>,
) {
    let slot = match free_slots.pop() {
        Some(s) => s,
        None => {
            solutions.push(CachedSolution::default());
            (solutions.len() - 1) as u32
        }
    };
    let sol = &mut solutions[slot as usize];
    sol.size = members.len() as u32;
    sol.weight = weight;
    sol.flips.clear();
    sol.flips.extend_from_slice(flips);
    sol.members.clear();
    sol.members.extend_from_slice(members);
    sol.duals.clear();
    sol.lpairs.clear();
    sol.blossoms.clear();
    sol.w_base = 0;
    if let Some((duals, lpairs, w_base, blossoms)) = warm {
        debug_assert_eq!(duals.len(), 2 * members.len());
        sol.duals.extend_from_slice(duals);
        sol.lpairs.extend_from_slice(lpairs);
        sol.blossoms.extend_from_slice(blossoms);
        sol.w_base = w_base;
    }
    sol.last_seen = epoch;
    sol.free = false;
    for &m in members {
        sol_of[m as usize] = slot;
    }
}
