//! Region collision: which detection events can possibly be matched
//! together.
//!
//! Conceptually, every detection event grows a region on the space-time
//! detector graph (spatial hops along detector-graph edges, temporal
//! hops between adjacent rounds, all unit weight — exactly the metric
//! the dense decoder's `distance + |Δround|` closure encodes). The
//! region's radius is capped at the event's own boundary distance: the
//! virtual boundary twin is a zero-cost exit, so an event never bids
//! more than its exit price for a partner. Two regions collide iff
//!
//! ```text
//! d(u, v) = distance(aᵤ, aᵥ) + |tᵤ − tᵥ|  <  bd(u) + bd(v)
//! ```
//!
//! and any matching edge a minimum-weight perfect matching can strictly
//! prefer over a pair of boundary exits satisfies exactly that
//! inequality. Merging colliding regions with a union-find therefore
//! yields clusters with the decomposition property the decoder builds
//! on:
//!
//! > an optimal matching exists that never pairs events across
//! > clusters — every cross-cluster pair is (weakly) beaten by two
//! > boundary exits.
//!
//! Collisions are *detected* with the lattice's precomputed
//! detector-graph distances (each check is one O(1) table lookup — the
//! tables are built once per code, not per decode), walking events in
//! round order so the time term alone prunes far-apart pairs wholesale:
//! once `|Δt| ≥ bd(u) + max_boundary_distance`, no later event can
//! collide with `u` and the inner scan breaks. No per-decode event
//! matrix is ever materialized — edge weights only come into existence
//! inside the small clusters the per-cluster solver actually matches.

use btwc_lattice::DetectorGraph;
use btwc_syndrome::DetectionEvent;

use crate::blossom::ClusterEdge;
use crate::scratch::SparseScratch;

/// Merges every colliding pair of regions.
///
/// On return, `scratch`'s union-find partitions `0..events.len()` into
/// the matching clusters, `scratch.order` holds the event indices
/// sorted by round (the scan order, reused by the caller for cluster
/// grouping), and `scratch.collisions` holds every colliding pair with
/// its space-time weight — the sparse edge set the in-solver blossom
/// matches on (an optimal matching only ever pairs events across a
/// collision edge; any other pair is weakly beaten by two boundary
/// exits). `scratch.prepare` must already have been called.
pub(crate) fn merge_colliding_regions(
    graph: &DetectorGraph,
    events: &[DetectionEvent],
    scratch: &mut SparseScratch,
) {
    let n = events.len();
    scratch.order.extend(0..n as u32);
    // Detection events arrive round-major from `RoundHistory`, making
    // this a no-op pass; explicit events from callers may not be
    // sorted, and the pruning below needs time order.
    scratch.order.sort_unstable_by_key(|&i| events[i as usize].round);
    let horizon = graph.max_boundary_distance();
    for i in 0..n {
        let u = scratch.order[i] as usize;
        let eu = &events[u];
        let bd_u = graph.boundary_distance(eu.ancilla);
        // Beyond this round gap, even the closest possible partner
        // would rather exit through the boundary.
        let cutoff = (bd_u + horizon) as usize;
        for j in (i + 1)..n {
            let v = scratch.order[j] as usize;
            let ev = &events[v];
            let dt = ev.round - eu.round;
            if dt >= cutoff {
                break;
            }
            let bid = bd_u + graph.boundary_distance(ev.ancilla);
            if dt as u32 >= bid {
                continue;
            }
            let d = graph.distance(eu.ancilla, ev.ancilla) + dt as u32;
            if d < bid {
                scratch.union(u as u32, v as u32);
                scratch.collisions.push(ClusterEdge::new(u as u32, v as u32, i64::from(d)));
            }
        }
    }
}

/// Incremental collision discovery for a slid window: finds every
/// colliding pair that involves a **dirty** event — one inserted by the
/// slide (the re-based front prefix `0..front_dirty` or the appended
/// tail `tail_start..`) — and appends it to `edges`.
///
/// Pairs of two clean (surviving) events are exactly the edges that
/// survived from the previous window: both endpoints kept their
/// ancillas and shifted their rounds by the same amount, so the
/// collision inequality and the edge weight are unchanged. Together
/// with the surviving edges this reproduces precisely the edge set
/// [`merge_colliding_regions`] would discover from scratch.
///
/// `events` must be sorted by round (the maintained stream order). Each
/// dirty event scans both directions until the round gap alone rules
/// out a collision — the same `bd(u) + max_boundary_distance` horizon
/// the batch scan prunes with. A dirty–dirty pair is added only from
/// its lower-indexed endpoint, so nothing is discovered twice.
pub(crate) fn scan_dirty_collisions(
    graph: &DetectorGraph,
    events: &[DetectionEvent],
    front_dirty: usize,
    tail_start: usize,
    edges: &mut Vec<ClusterEdge>,
) {
    let horizon = graph.max_boundary_distance();
    let n = events.len();
    let dirty = |i: usize| i < front_dirty || i >= tail_start;
    let mut scan = |u: usize| {
        let eu = &events[u];
        let bd_u = graph.boundary_distance(eu.ancilla);
        // Beyond this round gap, even the closest possible partner
        // would rather exit through the boundary.
        let cutoff = (bd_u + horizon) as usize;
        let mut pair = |v: usize| {
            if dirty(v) && v <= u {
                return; // the lower-indexed dirty endpoint adds it
            }
            let ev = &events[v];
            let dt = eu.round.abs_diff(ev.round);
            let bid = bd_u + graph.boundary_distance(ev.ancilla);
            if dt as u32 >= bid {
                return;
            }
            let d = graph.distance(eu.ancilla, ev.ancilla) + dt as u32;
            if d < bid {
                let (a, b) = if u < v { (u, v) } else { (v, u) };
                edges.push(ClusterEdge::new(a as u32, b as u32, i64::from(d)));
            }
        };
        for v in (0..u).rev() {
            if eu.round - events[v].round >= cutoff {
                break;
            }
            pair(v);
        }
        for (v, ev) in events.iter().enumerate().skip(u + 1) {
            if ev.round - eu.round >= cutoff {
                break;
            }
            pair(v);
        }
    };
    for u in 0..front_dirty {
        scan(u);
    }
    for u in tail_start..n {
        scan(u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btwc_lattice::{StabilizerType, SurfaceCode};

    fn clusters_of(code: &SurfaceCode, events: &[DetectionEvent]) -> Vec<u32> {
        let graph = code.detector_graph(StabilizerType::X);
        let mut scratch = SparseScratch::new();
        scratch.prepare(events.len());
        merge_colliding_regions(graph, events, &mut scratch);
        (0..events.len() as u32).map(|i| scratch.find(i)).collect()
    }

    #[test]
    fn adjacent_events_share_a_cluster() {
        let code = SurfaceCode::new(9);
        let graph = code.detector_graph(StabilizerType::X);
        let a = (0..graph.num_nodes()).find(|&a| !graph.neighbors(a).is_empty()).unwrap();
        let b = graph.neighbors(a)[0] as usize;
        let roots = clusters_of(
            &code,
            &[DetectionEvent { ancilla: a, round: 0 }, DetectionEvent { ancilla: b, round: 0 }],
        );
        assert_eq!(roots[0], roots[1]);
    }

    #[test]
    fn time_like_pair_shares_a_cluster() {
        let code = SurfaceCode::new(9);
        let roots = clusters_of(
            &code,
            &[DetectionEvent { ancilla: 20, round: 3 }, DetectionEvent { ancilla: 20, round: 4 }],
        );
        assert_eq!(roots[0], roots[1]);
    }

    #[test]
    fn far_events_stay_separate() {
        // Two boundary-adjacent ancillas on opposite sides of a d=13
        // code: each bids only 1 for a partner, so they cannot collide
        // across the lattice.
        let code = SurfaceCode::new(13);
        let graph = code.detector_graph(StabilizerType::X);
        let near: Vec<usize> =
            (0..graph.num_nodes()).filter(|&a| graph.boundary_distance(a) == 1).collect();
        let (u, v) = (near[0], *near.last().unwrap());
        assert!(graph.distance(u, v) > 2, "endpoints must be far apart");
        let roots = clusters_of(
            &code,
            &[DetectionEvent { ancilla: u, round: 0 }, DetectionEvent { ancilla: v, round: 0 }],
        );
        assert_ne!(roots[0], roots[1]);
    }

    #[test]
    fn far_in_time_events_stay_separate() {
        // Same ancilla, but further apart in rounds than twice its
        // boundary distance: both exit instead of pairing.
        let code = SurfaceCode::new(9);
        let graph = code.detector_graph(StabilizerType::X);
        let a = (0..graph.num_nodes())
            .max_by_key(|&a| graph.boundary_distance(a))
            .expect("nonempty graph");
        let gap = 2 * graph.boundary_distance(a) as usize;
        let roots = clusters_of(
            &code,
            &[DetectionEvent { ancilla: a, round: 0 }, DetectionEvent { ancilla: a, round: gap }],
        );
        assert_ne!(roots[0], roots[1]);
    }

    #[test]
    fn exactly_all_colliding_pairs_are_clustered() {
        // Exhaustive over same-round pairs at d=7: the union-find must
        // connect a pair iff the collision inequality holds (no other
        // events are present to merge them transitively).
        let code = SurfaceCode::new(7);
        let graph = code.detector_graph(StabilizerType::X);
        for u in 0..graph.num_nodes() {
            for v in (u + 1)..graph.num_nodes() {
                let d = graph.distance(u, v);
                let bid = graph.boundary_distance(u) + graph.boundary_distance(v);
                let roots = clusters_of(
                    &code,
                    &[
                        DetectionEvent { ancilla: u, round: 0 },
                        DetectionEvent { ancilla: v, round: 0 },
                    ],
                );
                assert_eq!(roots[0] == roots[1], d < bid, "pair ({u},{v}) d={d} bid={bid}");
            }
        }
    }

    #[test]
    fn chains_cluster_transitively() {
        // Three events in a row: the middle one collides with both ends,
        // so all three land in one cluster even if the outer two are too
        // far apart to collide directly.
        let code = SurfaceCode::new(13);
        let graph = code.detector_graph(StabilizerType::X);
        let a = (0..graph.num_nodes())
            .max_by_key(|&a| graph.boundary_distance(a))
            .expect("nonempty graph");
        let b = graph.neighbors(a)[0] as usize;
        let c = *graph.neighbors(b).iter().find(|&&x| x as usize != a).unwrap() as usize;
        let roots = clusters_of(
            &code,
            &[
                DetectionEvent { ancilla: a, round: 0 },
                DetectionEvent { ancilla: b, round: 0 },
                DetectionEvent { ancilla: c, round: 0 },
            ],
        );
        assert!(roots.iter().all(|&r| r == roots[0]), "roots {roots:?}");
    }

    #[test]
    fn unsorted_event_order_is_handled() {
        // Explicit event lists may arrive in any order; the round sort
        // inside the scan must make pruning safe regardless.
        let code = SurfaceCode::new(9);
        let roots = clusters_of(
            &code,
            &[
                DetectionEvent { ancilla: 20, round: 9 },
                DetectionEvent { ancilla: 20, round: 8 },
                DetectionEvent { ancilla: 5, round: 0 },
            ],
        );
        assert_eq!(roots[0], roots[1]);
        assert_ne!(roots[0], roots[2]);
    }
}
