//! Sparse-blossom off-chip decoding — exact MWPM without the dense
//! all-pairs event matrix.
//!
//! The BTWC hierarchy keeps Clique on-chip and ships only rare complex
//! windows to the off-chip matcher. The workspace's dense baseline
//! ([`btwc_mwpm::MwpmDecoder`]) solves those windows with an O(n³)
//! blossom over *every* event pair; this crate replaces that with the
//! sparse-blossom structure (à la PyMatching v2): work directly on the
//! space-time detector graph, give each detection event a region whose
//! radius is its boundary-exit bid (the virtual boundary twin as a
//! zero-cost exit), discover matchable edges lazily by detecting region
//! collisions in round order — each check one O(1) lookup in the
//! lattice's once-per-code distance tables, with a time-horizon prune
//! ending every scan early — and match the resulting clusters with the
//! in-crate sparse blossom solver ([`blossom`]): alternating trees,
//! dual adjustments (dynamic region radii), and blossom shrinking run
//! directly on the discovered collision edges, so a cluster of any
//! size — even a chained cluster spanning most of a window — is matched
//! without ever materializing a dense all-pairs table.
//!
//! The result is exact — identical total matching weight to the dense
//! blossom on every input, which the property suite verifies against
//! both the dense decoder and the exponential reference matcher — while
//! the per-decode cost drops from "cubic in all events" to "a pruned
//! collision scan plus per-cluster matchings sized by how entangled the
//! events actually are". All working state lives in a reusable
//! [`SparseScratch`], so warmed-up decodes allocate only what leaves in
//! the returned correction.
//!
//! The decoder is also **incremental across window slides**. A
//! streaming consumer decodes every position of a sliding round window;
//! consecutive positions share all but one round, yet a batch decode
//! recomputes regions, collisions, and cluster matchings from scratch.
//! [`SparseDecoder::decode_stream_weighted`] (and the
//! `ComplexDecoder::decode_stream_mut` trait hook the pipeline tiers
//! call) keeps the previous window's events, collision edges, and
//! per-cluster matchings alive in a `StreamState`: a slide re-bases the
//! surviving events (their pairwise collision structure is
//! translation-invariant, so surviving edges are reused verbatim),
//! scans only the dirty front/tail events for new collisions, and
//! re-solves only the clusters those rounds actually touch — quiet
//! slides return the committed correction without touching the solver
//! at all. Re-solved clusters are warm-started from their previous
//! duals, matched pairs, and blossom structure (majority-parity
//! normalized, with fresh events pre-paired mutual-best), so even a
//! touched cluster restarts near its old optimum instead of from zero.
//! Everything stays exact: the streamed result is pinned bit-identical
//! in weight to a from-scratch decode of every window position by the
//! streamed differential fuzz in `tests/sparse_vs_dense.rs`.
//!
//! [`SparseDecoder`] mirrors the dense decoder's API (`decode_window`,
//! `decode_events`, lock-free `_mut` and weight-reporting `_weighted`
//! variants) and plugs into the hierarchy as a `ComplexDecoder` backend
//! via `btwc_core::BtwcBuilder::offchip_backend`.
//!
//! # Example
//!
//! ```
//! use btwc_lattice::{StabilizerType, SurfaceCode};
//! use btwc_sparse::SparseDecoder;
//! use btwc_syndrome::RoundHistory;
//!
//! let code = SurfaceCode::new(5);
//! let decoder = SparseDecoder::new(&code, StabilizerType::X);
//!
//! // A single data error seen over two rounds:
//! let mut errors = vec![false; code.num_data_qubits()];
//! errors[12] = true;
//! let round = code.syndrome_of(StabilizerType::X, &errors);
//! let mut history = RoundHistory::new(round.len(), 8);
//! history.push(&round);
//! history.push(&round);
//! let correction = decoder.decode_window(&history);
//! assert_eq!(correction.qubits(), &[12]);
//! ```

pub mod blossom;
mod decoder;
mod regions;
mod scratch;
mod stream;

pub use blossom::{BlossomArena, ClusterEdge, WarmSeedStats};
pub use decoder::SparseDecoder;
pub use scratch::SparseScratch;
