//! Reusable per-decoder working state.
//!
//! Every array the sparse decode kernel touches lives here and is
//! recycled across decodes (cleared, never reallocated once grown to
//! the largest event count seen): the union-find over events, the
//! collision edge list the region scan discovers, the per-cluster
//! local graph, and the [`BlossomArena`] holding the sparse blossom
//! solver's alternating-tree and blossom tables. Warmed up, a decode
//! allocates only what leaves in its return value: the `Correction`'s
//! flip list.

use btwc_syndrome::DetectionEvent;

use crate::blossom::{BlossomArena, ClusterEdge};

/// Scratch for [`crate::SparseDecoder`]; grows monotonically to the
/// largest decode seen and is never shrunk.
#[derive(Debug, Default)]
pub struct SparseScratch {
    /// Union-find over events (parent pointers + subtree sizes).
    pub(crate) uf_parent: Vec<u32>,
    pub(crate) uf_size: Vec<u32>,
    /// Resolved cluster root per event, and event indices sorted first
    /// by round (the collision-scan order) and then by root (so each
    /// cluster is one contiguous run).
    pub(crate) root: Vec<u32>,
    pub(crate) order: Vec<u32>,
    /// Every colliding event pair found by the region scan, with its
    /// space-time weight — the sparse edge set the in-solver blossom
    /// matches on (global event indices; sorted by cluster root before
    /// the per-cluster solves).
    pub(crate) collisions: Vec<ClusterEdge>,
    /// Events of the cluster currently being solved, and the local
    /// index (position within the cluster) of each of its events.
    pub(crate) local_events: Vec<DetectionEvent>,
    pub(crate) local_id: Vec<u32>,
    /// The cluster's local two-copy graph (events + boundary twins) and
    /// the matched pairs the solver returns.
    pub(crate) cluster_edges: Vec<ClusterEdge>,
    pub(crate) pairs: Vec<(usize, usize)>,
    /// Recycled alternating-tree / blossom tables of the sparse
    /// blossom solver (sized by the largest cluster seen).
    pub(crate) arena: BlossomArena,
    /// Detection events of the window being decoded (filled by
    /// `decode_window`).
    pub(crate) events: Vec<DetectionEvent>,
    /// Warm-start assembly/export buffers around each cluster solve
    /// (see [`crate::decoder::WarmBufs`]).
    pub(crate) warm: crate::decoder::WarmBufs,
    /// Slots already folded into the warm assembly of the current
    /// cluster (tiny; linear membership checks).
    pub(crate) warm_seen: Vec<u32>,
}

impl SparseScratch {
    /// An empty scratch; it sizes itself on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Readies the scratch for a decode over `num_events` events:
    /// resets the union-find to singletons and clears the index and
    /// edge buffers, all in place.
    pub(crate) fn prepare(&mut self, num_events: usize) {
        self.uf_parent.clear();
        self.uf_parent.extend(0..num_events as u32);
        self.uf_size.clear();
        self.uf_size.resize(num_events, 1);
        self.root.clear();
        self.order.clear();
        self.collisions.clear();
        // `local_id` is only read for events of the cluster being
        // solved, which always writes first — no reset needed beyond
        // sizing.
        self.local_id.resize(num_events, 0);
    }

    /// Union-find root of event `x`, with path halving.
    pub(crate) fn find(&mut self, mut x: u32) -> u32 {
        while self.uf_parent[x as usize] != x {
            let grand = self.uf_parent[self.uf_parent[x as usize] as usize];
            self.uf_parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merges the clusters of events `a` and `b` (union by size).
    pub(crate) fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) = if self.uf_size[ra as usize] >= self.uf_size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.uf_parent[small as usize] = big;
        self.uf_size[big as usize] += self.uf_size[small as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_resets_union_find() {
        let mut s = SparseScratch::new();
        s.prepare(4);
        s.union(0, 2);
        s.union(1, 2);
        assert_eq!(s.find(0), s.find(1));
        assert_ne!(s.find(0), s.find(3));
        s.prepare(4);
        assert_ne!(s.find(0), s.find(2), "prepare must forget old unions");
    }

    #[test]
    fn prepare_shrinks_and_regrows() {
        let mut s = SparseScratch::new();
        s.prepare(8);
        s.union(6, 7);
        s.prepare(2);
        assert_eq!(s.uf_parent.len(), 2);
        s.prepare(8);
        assert_ne!(s.find(6), s.find(7), "regrown state must be pristine");
    }

    #[test]
    fn union_by_size_builds_one_cluster() {
        let mut s = SparseScratch::new();
        s.prepare(6);
        for i in 1..6 {
            s.union(0, i);
        }
        let root = s.find(0);
        assert!((0..6).all(|i| s.find(i) == root));
        assert_eq!(s.uf_size[root as usize], 6);
    }

    #[test]
    fn prepare_clears_collision_edges() {
        let mut s = SparseScratch::new();
        s.prepare(4);
        s.collisions.push(ClusterEdge::new(0, 1, 3));
        s.prepare(4);
        assert!(s.collisions.is_empty());
    }
}
