//! Reusable per-decoder working state.
//!
//! Every array the sparse decode kernel touches lives here and is
//! recycled across decodes (cleared, never reallocated once grown to
//! the largest event count seen). Warmed up, a decode allocates only
//! what leaves in its return value: the `Correction`'s flip list, plus
//! the tiny per-cluster `Matching` of the rare ≥ 3-event clusters — the
//! same caveat the dense decoder documents for its own returned
//! `Matching`.

use btwc_mwpm::blossom::MatchingScratch;
use btwc_syndrome::DetectionEvent;

/// Scratch for [`crate::SparseDecoder`]; grows monotonically to the
/// largest decode seen and is never shrunk.
#[derive(Debug, Default)]
pub struct SparseScratch {
    /// Union-find over events (parent pointers + subtree sizes).
    pub(crate) uf_parent: Vec<u32>,
    pub(crate) uf_size: Vec<u32>,
    /// Resolved cluster root per event, and event indices sorted first
    /// by round (the collision-scan order) and then by root (so each
    /// cluster is one contiguous run).
    pub(crate) root: Vec<u32>,
    pub(crate) order: Vec<u32>,
    /// Events of the cluster currently being solved.
    pub(crate) local_events: Vec<DetectionEvent>,
    /// Dense blossom tables for ≥ 3-event clusters (sized by the largest
    /// cluster seen, typically a handful of nodes).
    pub(crate) blossom: MatchingScratch,
    /// Detection events of the window being decoded (filled by
    /// `decode_window`).
    pub(crate) events: Vec<DetectionEvent>,
}

impl SparseScratch {
    /// An empty scratch; it sizes itself on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Readies the scratch for a decode over `num_events` events:
    /// resets the union-find to singletons and clears the index
    /// buffers, all in place.
    pub(crate) fn prepare(&mut self, num_events: usize) {
        self.uf_parent.clear();
        self.uf_parent.extend(0..num_events as u32);
        self.uf_size.clear();
        self.uf_size.resize(num_events, 1);
        self.root.clear();
        self.order.clear();
    }

    /// Union-find root of event `x`, with path halving.
    pub(crate) fn find(&mut self, mut x: u32) -> u32 {
        while self.uf_parent[x as usize] != x {
            let grand = self.uf_parent[self.uf_parent[x as usize] as usize];
            self.uf_parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merges the clusters of events `a` and `b` (union by size).
    pub(crate) fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) = if self.uf_size[ra as usize] >= self.uf_size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.uf_parent[small as usize] = big;
        self.uf_size[big as usize] += self.uf_size[small as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_resets_union_find() {
        let mut s = SparseScratch::new();
        s.prepare(4);
        s.union(0, 2);
        s.union(1, 2);
        assert_eq!(s.find(0), s.find(1));
        assert_ne!(s.find(0), s.find(3));
        s.prepare(4);
        assert_ne!(s.find(0), s.find(2), "prepare must forget old unions");
    }

    #[test]
    fn prepare_shrinks_and_regrows() {
        let mut s = SparseScratch::new();
        s.prepare(8);
        s.union(6, 7);
        s.prepare(2);
        assert_eq!(s.uf_parent.len(), 2);
        s.prepare(8);
        assert_ne!(s.find(6), s.find(7), "regrown state must be pristine");
    }

    #[test]
    fn union_by_size_builds_one_cluster() {
        let mut s = SparseScratch::new();
        s.prepare(6);
        for i in 1..6 {
            s.union(0, i);
        }
        let root = s.find(0);
        assert!((0..6).all(|i| s.find(i) == root));
        assert_eq!(s.uf_size[root as usize], 6);
    }
}
