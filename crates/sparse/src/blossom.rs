//! In-solver sparse blossom matching: exact minimum-weight perfect
//! matching over an explicit *edge list* instead of a dense all-pairs
//! matrix.
//!
//! This is the solver behind [`crate::SparseDecoder`]'s per-cluster
//! matching. The decoder hands it the cluster's collision edges (the
//! sparse structure [`crate::regions`] already discovered with the
//! lattice's O(1) distance tables) and it runs Edmonds' primal–dual
//! blossom algorithm directly on them: grow alternating trees from the
//! exposed vertices, adjust dual variables (each vertex dual is the
//! dynamic radius of that event's matching region — it grows while the
//! vertex is an outer tree node and shrinks while it is inner), *shrink*
//! every odd alternating cycle into a blossom node, and lazily expand
//! blossoms whose dual reaches zero. The implementation follows the
//! van Rantwijk formulation of Galil's exposition — the standard
//! edge-list O(V·E) -per-stage structure — so the cost of matching a
//! cluster scales with how many region collisions it actually contains,
//! not with the square of its event count.
//!
//! Minimum-weight **perfect** matching is obtained by maximizing the
//! complemented weights `2·(w_max − w)` under the maximum-cardinality
//! rule: every input graph the decoder builds contains a perfect
//! matching (each event can always exit through its own boundary twin),
//! so the maximum-cardinality maximum-weight matching is exactly the
//! minimum-weight perfect one. Doubling keeps every dual variable and
//! slack integral.
//!
//! All solver state lives in a caller-owned [`BlossomArena`] that
//! regrows monotonically and is reset — never reallocated — per solve,
//! so the decode hot path stays allocation-free once warm.
//!
//! Correctness is pinned three ways: in-module property tests against
//! the exponential reference matcher, the brute-force cluster suite in
//! `tests/properties.rs`, and the chained-cluster differential fuzz
//! sweep against the dense blossom in `tests/sparse_vs_dense.rs`.

const NONE: i32 = -1;

/// One undirected edge of a cluster graph, with its weight under the
/// original minimization objective (`weight >= 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterEdge {
    /// First endpoint (vertex index).
    pub u: u32,
    /// Second endpoint (vertex index, `!= u`).
    pub v: u32,
    /// Non-negative matching weight of pairing `u` with `v`.
    pub weight: i64,
}

impl ClusterEdge {
    /// Convenience constructor.
    #[must_use]
    pub fn new(u: u32, v: u32, weight: i64) -> Self {
        Self { u, v, weight }
    }
}

/// Recycled working state for the sparse blossom solver: alternating
/// tree labels, blossom child/endpoint lists, dual variables, and the
/// per-solve edge-list graph. Grows monotonically to the largest
/// cluster seen and is never shrunk; [`BlossomArena::solve`] resets it
/// in place.
#[derive(Debug, Default)]
pub struct BlossomArena {
    /// Number of real vertices of the current solve.
    n: usize,
    /// Number of edges of the current solve.
    m: usize,
    // --- the graph (edge list + CSR adjacency) ---
    edge_u: Vec<u32>,
    edge_v: Vec<u32>,
    /// Complemented, doubled weights `2 * (w_max - w)` (maximized).
    wt: Vec<i64>,
    /// Original minimization weights (for the reported total).
    orig: Vec<i64>,
    /// `endpoint[2k] = u`, `endpoint[2k + 1] = v` of edge `k`.
    endpoint: Vec<u32>,
    /// CSR offsets into `nb`, length `n + 1`.
    nb_off: Vec<u32>,
    /// Remote endpoints of the edges incident to each vertex.
    nb: Vec<u32>,
    // --- solver state (vertex- or blossom-indexed, length 2n) ---
    /// `mate[v]` = remote endpoint of v's matched edge, or -1.
    mate: Vec<i32>,
    /// 0 free, 1 S (outer), 2 T (inner), 5 = S + breadcrumb, -1 unused.
    label: Vec<i8>,
    /// Remote endpoint of the edge through which the label was claimed.
    labelend: Vec<i32>,
    /// Top-level blossom containing each vertex.
    inblossom: Vec<u32>,
    blossomparent: Vec<i32>,
    /// Base vertex of each blossom (-1 for unused blossom slots).
    blossombase: Vec<i32>,
    /// Ordered sub-blossoms and their connecting edge endpoints.
    blossomchilds: Vec<Vec<u32>>,
    blossomendps: Vec<Vec<u32>>,
    /// Least-slack edge to each neighboring S-blossom, and the cached
    /// per-blossom candidate lists.
    bestedge: Vec<i32>,
    blossombest: Vec<Vec<u32>>,
    has_best: Vec<bool>,
    /// Dual variables: vertex radii and blossom duals.
    dualvar: Vec<i64>,
    /// Edges known to have zero slack.
    allowedge: Vec<bool>,
    queue: Vec<u32>,
    unused: Vec<u32>,
    // --- recycled temporaries ---
    leaves: Vec<u32>,
    leaves2: Vec<u32>,
    scan_path: Vec<u32>,
    cand: Vec<u32>,
    bestedgeto: Vec<i32>,
}

impl BlossomArena {
    /// An empty arena; it sizes itself on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes a minimum-weight perfect matching of `num_vertices`
    /// vertices over the given edge list, appending the matched pairs
    /// (each `(u, v)` with `u < v`) into `pairs` and returning the
    /// total weight under the original minimization weights.
    ///
    /// # Panics
    ///
    /// Panics if an edge is out of range, a weight is negative, or the
    /// graph has no perfect matching (the decoder's cluster graphs
    /// always do: every event can exit through its own boundary twin).
    pub fn solve(
        &mut self,
        num_vertices: usize,
        edges: &[ClusterEdge],
        pairs: &mut Vec<(usize, usize)>,
    ) -> i64 {
        pairs.clear();
        if num_vertices == 0 {
            return 0;
        }
        assert!(num_vertices.is_multiple_of(2), "odd vertex count {num_vertices} cannot match");
        self.prepare(num_vertices, edges);
        let (n, two_n) = (self.n, 2 * self.n);

        for _stage in 0..n {
            // Stage reset: forget labels, best edges, and allowed
            // (zero-slack) markers; duals, mates, and the blossom
            // structure persist across stages.
            self.label[..two_n].fill(0);
            self.labelend[..two_n].fill(NONE);
            self.bestedge[..two_n].fill(NONE);
            for b in n..two_n {
                self.blossombest[b].clear();
                self.has_best[b] = false;
            }
            self.allowedge[..self.m].fill(false);
            self.queue.clear();
            for v in 0..n {
                if self.mate[v] == NONE && self.label[self.inblossom[v] as usize] == 0 {
                    self.assign_label(v, 1, NONE);
                }
            }

            let mut augmented = false;
            loop {
                // Substage: scan S-vertices until an augmenting path is
                // found or the queue drains.
                'scan: while !augmented {
                    let Some(v) = self.queue.pop() else { break };
                    let v = v as usize;
                    debug_assert_eq!(self.label[self.inblossom[v] as usize], 1);
                    for pi in self.nb_off[v] as usize..self.nb_off[v + 1] as usize {
                        let p = self.nb[pi] as usize;
                        let k = p / 2;
                        let w = self.endpoint[p] as usize;
                        if self.inblossom[v] == self.inblossom[w] {
                            continue;
                        }
                        let mut kslack = 0;
                        if !self.allowedge[k] {
                            kslack = self.slack(k);
                            if kslack <= 0 {
                                self.allowedge[k] = true;
                            }
                        }
                        let bw = self.inblossom[w] as usize;
                        if self.allowedge[k] {
                            if self.label[bw] == 0 {
                                // (C1) w is free: grow the tree.
                                self.assign_label(w, 2, (p ^ 1) as i32);
                            } else if self.label[bw] == 1 {
                                // (C2) two S-blossoms meet: either an
                                // odd cycle to shrink or an augmenting
                                // path.
                                let base = self.scan_blossom(v as i32, w as i32);
                                if base >= 0 {
                                    self.add_blossom(base as usize, k);
                                } else {
                                    self.augment_matching(k);
                                    augmented = true;
                                    continue 'scan;
                                }
                            } else if self.label[w] == 0 {
                                // w is inside a T-blossom but unlabeled:
                                // remember how it was reached.
                                debug_assert_eq!(self.label[bw], 2);
                                self.label[w] = 2;
                                self.labelend[w] = (p ^ 1) as i32;
                            }
                        } else if self.label[bw] == 1 {
                            // Track least-slack edges for the dual step.
                            let b = self.inblossom[v] as usize;
                            if self.bestedge[b] == NONE
                                || kslack < self.slack(self.bestedge[b] as usize)
                            {
                                self.bestedge[b] = k as i32;
                            }
                        } else if self.label[w] == 0
                            && (self.bestedge[w] == NONE
                                || kslack < self.slack(self.bestedge[w] as usize))
                        {
                            self.bestedge[w] = k as i32;
                        }
                    }
                }
                if augmented {
                    break;
                }

                // Dual adjustment: the cheapest move that creates a new
                // tight edge or frees a blossom for expansion.
                let mut deltatype = -1;
                let mut delta = 0i64;
                let mut deltaedge = NONE;
                let mut deltablossom = NONE;
                for v in 0..n {
                    if self.label[self.inblossom[v] as usize] == 0 && self.bestedge[v] != NONE {
                        let d = self.slack(self.bestedge[v] as usize);
                        if deltatype == -1 || d < delta {
                            delta = d;
                            deltatype = 2;
                            deltaedge = self.bestedge[v];
                        }
                    }
                }
                for b in 0..two_n {
                    if self.blossomparent[b] == NONE
                        && self.label[b] == 1
                        && self.bestedge[b] != NONE
                    {
                        let kslack = self.slack(self.bestedge[b] as usize);
                        debug_assert_eq!(kslack % 2, 0, "doubled weights keep slacks even");
                        let d = kslack / 2;
                        if deltatype == -1 || d < delta {
                            delta = d;
                            deltatype = 3;
                            deltaedge = self.bestedge[b];
                        }
                    }
                }
                for b in n..two_n {
                    if self.blossombase[b] >= 0
                        && self.blossomparent[b] == NONE
                        && self.label[b] == 2
                        && (deltatype == -1 || self.dualvar[b] < delta)
                    {
                        delta = self.dualvar[b];
                        deltatype = 4;
                        deltablossom = b as i32;
                    }
                }
                if deltatype == -1 {
                    // No further move: a maximum-cardinality optimum is
                    // reached (the perfect matching, for our graphs).
                    deltatype = 1;
                    delta = self.dualvar[..n].iter().copied().min().unwrap_or(0).max(0);
                }

                for v in 0..n {
                    match self.label[self.inblossom[v] as usize] {
                        1 => self.dualvar[v] -= delta,
                        2 => self.dualvar[v] += delta,
                        _ => {}
                    }
                }
                for b in n..two_n {
                    if self.blossombase[b] >= 0 && self.blossomparent[b] == NONE {
                        match self.label[b] {
                            1 => self.dualvar[b] += delta,
                            2 => self.dualvar[b] -= delta,
                            _ => {}
                        }
                    }
                }

                match deltatype {
                    1 => break,
                    2 => {
                        let k = deltaedge as usize;
                        self.allowedge[k] = true;
                        let (mut i, j) = (self.edge_u[k], self.edge_v[k]);
                        if self.label[self.inblossom[i as usize] as usize] == 0 {
                            i = j;
                        }
                        debug_assert_eq!(self.label[self.inblossom[i as usize] as usize], 1);
                        self.queue.push(i);
                    }
                    3 => {
                        let k = deltaedge as usize;
                        self.allowedge[k] = true;
                        debug_assert_eq!(
                            self.label[self.inblossom[self.edge_u[k] as usize] as usize],
                            1
                        );
                        self.queue.push(self.edge_u[k]);
                    }
                    _ => self.expand_blossom(deltablossom as usize, false),
                }
            }

            if !augmented {
                break;
            }
            // End of stage: expand S-blossoms whose dual hit zero.
            for b in n..two_n {
                if self.blossomparent[b] == NONE
                    && self.blossombase[b] >= 0
                    && self.label[b] == 1
                    && self.dualvar[b] == 0
                {
                    self.expand_blossom(b, true);
                }
            }
        }

        let mut total = 0i64;
        for v in 0..n {
            let p = self.mate[v];
            assert!(p >= 0, "cluster graph has no perfect matching (vertex {v} exposed)");
            let u = self.endpoint[p as usize] as usize;
            if v < u {
                pairs.push((v, u));
                total += self.orig[p as usize / 2];
            }
        }
        total
    }

    /// Sizes and resets every table for a solve over `n` vertices and
    /// the given edges (no allocation once grown).
    fn prepare(&mut self, n: usize, edges: &[ClusterEdge]) {
        let m = edges.len();
        self.n = n;
        self.m = m;
        let two_n = 2 * n;

        self.edge_u.clear();
        self.edge_v.clear();
        self.orig.clear();
        self.endpoint.clear();
        let mut w_max = 0i64;
        for e in edges {
            assert!(
                (e.u as usize) < n && (e.v as usize) < n && e.u != e.v,
                "edge ({}, {}) out of range for {n} vertices",
                e.u,
                e.v
            );
            assert!(e.weight >= 0, "negative weight {} on edge ({}, {})", e.weight, e.u, e.v);
            w_max = w_max.max(e.weight);
            self.edge_u.push(e.u);
            self.edge_v.push(e.v);
            self.orig.push(e.weight);
            self.endpoint.push(e.u);
            self.endpoint.push(e.v);
        }
        // Complement and double: maximize 2 * (w_max - w).
        self.wt.clear();
        self.wt.extend(self.orig.iter().map(|&w| 2 * (w_max - w)));

        // CSR adjacency of remote endpoints.
        self.nb_off.clear();
        self.nb_off.resize(n + 1, 0);
        for e in edges {
            self.nb_off[e.u as usize + 1] += 1;
            self.nb_off[e.v as usize + 1] += 1;
        }
        for i in 0..n {
            self.nb_off[i + 1] += self.nb_off[i];
        }
        self.nb.clear();
        self.nb.resize(2 * m, 0);
        let mut cursor = std::mem::take(&mut self.leaves);
        cursor.clear();
        cursor.extend_from_slice(&self.nb_off[..n]);
        for (k, e) in edges.iter().enumerate() {
            self.nb[cursor[e.u as usize] as usize] = (2 * k + 1) as u32;
            cursor[e.u as usize] += 1;
            self.nb[cursor[e.v as usize] as usize] = (2 * k) as u32;
            cursor[e.v as usize] += 1;
        }
        self.leaves = cursor;

        self.mate.clear();
        self.mate.resize(n, NONE);
        self.label.clear();
        self.label.resize(two_n, 0);
        self.labelend.clear();
        self.labelend.resize(two_n, NONE);
        self.inblossom.clear();
        self.inblossom.extend(0..n as u32);
        self.blossomparent.clear();
        self.blossomparent.resize(two_n, NONE);
        self.blossombase.clear();
        self.blossombase.extend(0..n as i32);
        self.blossombase.resize(two_n, NONE);
        self.bestedge.clear();
        self.bestedge.resize(two_n, NONE);
        let max_w2 = self.wt.iter().copied().max().unwrap_or(0);
        self.dualvar.clear();
        self.dualvar.resize(n, max_w2);
        self.dualvar.resize(two_n, 0);
        if self.blossomchilds.len() < two_n {
            self.blossomchilds.resize_with(two_n, Vec::new);
            self.blossomendps.resize_with(two_n, Vec::new);
            self.blossombest.resize_with(two_n, Vec::new);
        }
        for b in 0..two_n {
            self.blossomchilds[b].clear();
            self.blossomendps[b].clear();
            self.blossombest[b].clear();
        }
        self.has_best.clear();
        self.has_best.resize(two_n, false);
        self.allowedge.clear();
        self.allowedge.resize(m, false);
        self.queue.clear();
        self.unused.clear();
        self.unused.extend(n as u32..two_n as u32);
    }

    /// Slack of edge `k` under the current duals (doubled weights keep
    /// every slack integral; zero slack means the edge is tight).
    #[inline]
    fn slack(&self, k: usize) -> i64 {
        self.dualvar[self.edge_u[k] as usize] + self.dualvar[self.edge_v[k] as usize]
            - 2 * self.wt[k]
    }

    /// Appends every real vertex inside blossom `b` to `out`.
    fn collect_leaves(&self, b: usize, out: &mut Vec<u32>) {
        if b < self.n {
            out.push(b as u32);
        } else {
            for &t in &self.blossomchilds[b] {
                self.collect_leaves(t as usize, out);
            }
        }
    }

    /// Labels vertex `w` (and its top-level blossom) with `t`, reached
    /// through remote endpoint `p`. An S label enqueues the blossom's
    /// vertices for scanning; a T label immediately pulls the base's
    /// mate into the tree as S.
    fn assign_label(&mut self, w: usize, t: i8, p: i32) {
        let b = self.inblossom[w] as usize;
        debug_assert!(self.label[w] == 0 && self.label[b] == 0);
        self.label[w] = t;
        self.label[b] = t;
        self.labelend[w] = p;
        self.labelend[b] = p;
        self.bestedge[w] = NONE;
        self.bestedge[b] = NONE;
        if t == 1 {
            let mut leaves = std::mem::take(&mut self.leaves);
            leaves.clear();
            self.collect_leaves(b, &mut leaves);
            self.queue.extend_from_slice(&leaves);
            self.leaves = leaves;
        } else {
            let base = self.blossombase[b] as usize;
            let mate_base = self.mate[base];
            debug_assert!(mate_base >= 0);
            let next = self.endpoint[mate_base as usize] as usize;
            self.assign_label(next, 1, mate_base ^ 1);
        }
    }

    /// Traces back from the S-vertices `v` and `w` simultaneously.
    /// Returns the base vertex of the first common ancestor blossom, or
    /// -1 if the paths reach two different roots (an augmenting path).
    fn scan_blossom(&mut self, mut v: i32, mut w: i32) -> i32 {
        let mut path = std::mem::take(&mut self.scan_path);
        path.clear();
        let mut base = NONE;
        while v != NONE || w != NONE {
            let mut b = self.inblossom[v as usize] as usize;
            if self.label[b] & 4 != 0 {
                base = self.blossombase[b];
                break;
            }
            debug_assert_eq!(self.label[b], 1);
            path.push(b as u32);
            self.label[b] = 5; // breadcrumb
            debug_assert_eq!(self.labelend[b], self.mate[self.blossombase[b] as usize]);
            if self.labelend[b] == NONE {
                v = NONE; // reached a root
            } else {
                v = self.endpoint[self.labelend[b] as usize] as i32;
                b = self.inblossom[v as usize] as usize;
                debug_assert_eq!(self.label[b], 2);
                debug_assert!(self.labelend[b] >= 0);
                v = self.endpoint[self.labelend[b] as usize] as i32;
            }
            if w != NONE {
                std::mem::swap(&mut v, &mut w);
            }
        }
        for &b in &path {
            self.label[b as usize] = 1;
        }
        self.scan_path = path;
        base
    }

    /// Shrinks the odd alternating cycle through edge `k` with common
    /// ancestor base `base` into a new blossom node.
    fn add_blossom(&mut self, base: usize, k: usize) {
        let (mut v, mut w) = (self.edge_u[k] as usize, self.edge_v[k] as usize);
        let bb = self.inblossom[base] as usize;
        let mut bv = self.inblossom[v] as usize;
        let mut bw = self.inblossom[w] as usize;
        let b = self.unused.pop().expect("a cluster of n events needs at most n blossoms") as usize;
        self.blossombase[b] = base as i32;
        self.blossomparent[b] = NONE;
        self.blossomparent[bb] = b as i32;

        // Collect the cycle's sub-blossoms and connecting endpoints:
        // walk both tree paths down to the base.
        let mut path = std::mem::take(&mut self.blossomchilds[b]);
        let mut endps = std::mem::take(&mut self.blossomendps[b]);
        path.clear();
        endps.clear();
        while bv != bb {
            self.blossomparent[bv] = b as i32;
            path.push(bv as u32);
            endps.push(self.labelend[bv] as u32);
            debug_assert!(self.labelend[bv] >= 0);
            v = self.endpoint[self.labelend[bv] as usize] as usize;
            bv = self.inblossom[v] as usize;
        }
        path.push(bb as u32);
        path.reverse();
        endps.reverse();
        endps.push((2 * k) as u32);
        while bw != bb {
            self.blossomparent[bw] = b as i32;
            path.push(bw as u32);
            endps.push((self.labelend[bw] ^ 1) as u32);
            debug_assert!(self.labelend[bw] >= 0);
            w = self.endpoint[self.labelend[bw] as usize] as usize;
            bw = self.inblossom[w] as usize;
        }
        debug_assert_eq!(self.label[bb], 1);
        self.label[b] = 1;
        self.labelend[b] = self.labelend[bb];
        self.dualvar[b] = 0;
        self.blossomchilds[b] = path;
        self.blossomendps[b] = endps;

        // Former T-vertices become S-vertices of the new blossom.
        let mut leaves = std::mem::take(&mut self.leaves);
        leaves.clear();
        self.collect_leaves(b, &mut leaves);
        for &vx in &leaves {
            let vx = vx as usize;
            if self.label[self.inblossom[vx] as usize] == 2 {
                self.queue.push(vx as u32);
            }
            self.inblossom[vx] = b as u32;
        }
        self.leaves = leaves;

        // Merge the sub-blossoms' least-slack edge lists.
        let two_n = 2 * self.n;
        let mut bestedgeto = std::mem::take(&mut self.bestedgeto);
        bestedgeto.clear();
        bestedgeto.resize(two_n, NONE);
        let mut cand = std::mem::take(&mut self.cand);
        for ci in 0..self.blossomchilds[b].len() {
            let bvx = self.blossomchilds[b][ci] as usize;
            cand.clear();
            if self.has_best[bvx] {
                cand.extend_from_slice(&self.blossombest[bvx]);
            } else {
                let mut lvs = std::mem::take(&mut self.leaves2);
                lvs.clear();
                self.collect_leaves(bvx, &mut lvs);
                for &lf in &lvs {
                    let lf = lf as usize;
                    for pi in self.nb_off[lf] as usize..self.nb_off[lf + 1] as usize {
                        cand.push(self.nb[pi] / 2);
                    }
                }
                self.leaves2 = lvs;
            }
            for &kk in &cand {
                let kk = kk as usize;
                let (mut i, mut j) = (self.edge_u[kk] as usize, self.edge_v[kk] as usize);
                if self.inblossom[j] as usize == b {
                    std::mem::swap(&mut i, &mut j);
                }
                let bj = self.inblossom[j] as usize;
                if bj != b
                    && self.label[bj] == 1
                    && (bestedgeto[bj] == NONE
                        || self.slack(kk) < self.slack(bestedgeto[bj] as usize))
                {
                    bestedgeto[bj] = kk as i32;
                }
            }
            self.blossombest[bvx].clear();
            self.has_best[bvx] = false;
            self.bestedge[bvx] = NONE;
        }
        self.cand = cand;
        let mut best = std::mem::take(&mut self.blossombest[b]);
        best.clear();
        let mut bk = NONE;
        for &e in bestedgeto.iter() {
            if e != NONE {
                best.push(e as u32);
                if bk == NONE || self.slack(e as usize) < self.slack(bk as usize) {
                    bk = e;
                }
            }
        }
        self.bestedgeto = bestedgeto;
        self.blossombest[b] = best;
        self.has_best[b] = true;
        self.bestedge[b] = bk;
    }

    /// Expands blossom `b`, promoting its children to top level. During
    /// a stage (`endstage == false`, dual hit zero on a T-blossom) the
    /// children along the alternating path through the blossom are
    /// relabeled; at stage end the structure is simply dissolved.
    fn expand_blossom(&mut self, b: usize, endstage: bool) {
        // Take `b`'s lists for the duration of the call (returned
        // cleared below, so the capacity is recycled, not reallocated):
        // nothing below reads `blossomchilds[b]`/`blossomendps[b]`
        // through `self` — recursion and leaf collection only touch
        // sub-blossoms, whose vertices were re-pointed away from `b`
        // first.
        let childs = std::mem::take(&mut self.blossomchilds[b]);
        let endps = std::mem::take(&mut self.blossomendps[b]);
        for &s in &childs {
            let s = s as usize;
            self.blossomparent[s] = NONE;
            if s < self.n {
                self.inblossom[s] = s as u32;
            } else if endstage && self.dualvar[s] == 0 {
                self.expand_blossom(s, endstage);
            } else {
                let mut lvs = std::mem::take(&mut self.leaves2);
                lvs.clear();
                self.collect_leaves(s, &mut lvs);
                for &v in &lvs {
                    self.inblossom[v as usize] = s as u32;
                }
                self.leaves2 = lvs;
            }
        }
        if !endstage && self.label[b] == 2 {
            let len = childs.len() as isize;
            let idx = |j: isize| -> usize { j.rem_euclid(len) as usize };
            debug_assert!(self.labelend[b] >= 0);
            let entrychild =
                self.inblossom[self.endpoint[(self.labelend[b] ^ 1) as usize] as usize] as usize;
            let mut j = childs
                .iter()
                .position(|&c| c as usize == entrychild)
                .expect("entry child must be a sub-blossom") as isize;
            let (jstep, endptrick): (isize, u32) = if j & 1 != 0 {
                j -= len;
                (1, 0)
            } else {
                (-1, 1)
            };
            // Walk from the entry child to the base, alternately
            // relabeling T- and stepping over S-sub-blossoms.
            let mut p = self.labelend[b] as u32;
            while j != 0 {
                let ep1 = self.endpoint[(p ^ 1) as usize] as usize;
                self.label[ep1] = 0;
                let q = endps[idx(j - endptrick as isize)] ^ endptrick ^ 1;
                self.label[self.endpoint[q as usize] as usize] = 0;
                self.assign_label(ep1, 2, p as i32);
                self.allowedge[(endps[idx(j - endptrick as isize)] / 2) as usize] = true;
                j += jstep;
                p = endps[idx(j - endptrick as isize)] ^ endptrick;
                self.allowedge[(p / 2) as usize] = true;
                j += jstep;
            }
            // Relabel the base sub-blossom without stepping to its mate.
            let bv = childs[idx(j)] as usize;
            let ep1 = self.endpoint[(p ^ 1) as usize] as usize;
            self.label[ep1] = 2;
            self.label[bv] = 2;
            self.labelend[ep1] = p as i32;
            self.labelend[bv] = p as i32;
            self.bestedge[bv] = NONE;
            // The remaining children leave the tree unless a vertex of
            // theirs was reached from outside the expanding blossom.
            j += jstep;
            while childs[idx(j)] as usize != entrychild {
                let bv = childs[idx(j)] as usize;
                if self.label[bv] == 1 {
                    j += jstep;
                    continue;
                }
                let mut lvs = std::mem::take(&mut self.leaves2);
                lvs.clear();
                self.collect_leaves(bv, &mut lvs);
                let labeled =
                    lvs.iter().copied().find(|&v| self.label[v as usize] != 0).map(|v| v as usize);
                self.leaves2 = lvs;
                if let Some(v) = labeled {
                    debug_assert_eq!(self.label[v], 2);
                    debug_assert_eq!(self.inblossom[v] as usize, bv);
                    self.label[v] = 0;
                    let base = self.blossombase[bv] as usize;
                    self.label[self.endpoint[self.mate[base] as usize] as usize] = 0;
                    let le = self.labelend[v];
                    self.assign_label(v, 2, le);
                }
                j += jstep;
            }
        }
        // Recycle the slot (and the taken lists' capacity).
        let (mut childs, mut endps) = (childs, endps);
        childs.clear();
        endps.clear();
        self.blossomchilds[b] = childs;
        self.blossomendps[b] = endps;
        self.label[b] = -1;
        self.labelend[b] = NONE;
        self.blossombase[b] = NONE;
        self.blossombest[b].clear();
        self.has_best[b] = false;
        self.bestedge[b] = NONE;
        self.unused.push(b as u32);
    }

    /// Swaps matched and unmatched edges around blossom `b` so that
    /// vertex `v` becomes its base (recursing into sub-blossoms).
    fn augment_blossom(&mut self, b: usize, v: usize) {
        let mut t = v;
        while self.blossomparent[t] != b as i32 {
            t = self.blossomparent[t] as usize;
        }
        if t >= self.n {
            self.augment_blossom(t, v);
        }
        // Take `b`'s lists for the walk (restored rotated below):
        // recursive augments only ever reference sub-blossoms of `b`.
        let mut childs = std::mem::take(&mut self.blossomchilds[b]);
        let mut endps = std::mem::take(&mut self.blossomendps[b]);
        let len = childs.len() as isize;
        let idx = |j: isize| -> usize { j.rem_euclid(len) as usize };
        let i = childs.iter().position(|&c| c as usize == t).expect("t is a child of b") as isize;
        let mut j = i;
        let (jstep, endptrick): (isize, u32) = if i & 1 != 0 {
            j -= len;
            (1, 0)
        } else {
            (-1, 1)
        };
        while j != 0 {
            j += jstep;
            let t1 = childs[idx(j)] as usize;
            let p = endps[idx(j - endptrick as isize)] ^ endptrick;
            if t1 >= self.n {
                self.augment_blossom(t1, self.endpoint[p as usize] as usize);
            }
            j += jstep;
            let t2 = childs[idx(j)] as usize;
            if t2 >= self.n {
                self.augment_blossom(t2, self.endpoint[(p ^ 1) as usize] as usize);
            }
            self.mate[self.endpoint[p as usize] as usize] = (p ^ 1) as i32;
            self.mate[self.endpoint[(p ^ 1) as usize] as usize] = p as i32;
        }
        childs.rotate_left(i as usize);
        endps.rotate_left(i as usize);
        self.blossombase[b] = self.blossombase[childs[0] as usize];
        self.blossomchilds[b] = childs;
        self.blossomendps[b] = endps;
    }

    /// Augments the matching along the path through tight edge `k`,
    /// flipping matched/unmatched edges back to each tree root.
    fn augment_matching(&mut self, k: usize) {
        let (v, w) = (self.edge_u[k] as usize, self.edge_v[k] as usize);
        for (s0, p0) in [(v, (2 * k + 1) as i32), (w, (2 * k) as i32)] {
            let mut s = s0;
            let mut p = p0;
            loop {
                let bs = self.inblossom[s] as usize;
                debug_assert_eq!(self.label[bs], 1);
                debug_assert_eq!(self.labelend[bs], self.mate[self.blossombase[bs] as usize]);
                if bs >= self.n {
                    self.augment_blossom(bs, s);
                }
                self.mate[s] = p;
                if self.labelend[bs] == NONE {
                    break; // reached the tree root
                }
                let t = self.endpoint[self.labelend[bs] as usize] as usize;
                let bt = self.inblossom[t] as usize;
                debug_assert_eq!(self.label[bt], 2);
                debug_assert!(self.labelend[bt] >= 0);
                s = self.endpoint[self.labelend[bt] as usize] as usize;
                let j = self.endpoint[(self.labelend[bt] ^ 1) as usize] as usize;
                debug_assert_eq!(self.blossombase[bt] as usize, t);
                if bt >= self.n {
                    self.augment_blossom(bt, j);
                }
                self.mate[j] = self.labelend[bt];
                p = self.labelend[bt] ^ 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btwc_mwpm::brute::brute_force_min_weight;
    use btwc_noise::SimRng;

    fn solve_fresh(n: usize, edges: &[ClusterEdge]) -> (Vec<(usize, usize)>, i64) {
        let mut arena = BlossomArena::new();
        let mut pairs = Vec::new();
        let total = arena.solve(n, edges, &mut pairs);
        (pairs, total)
    }

    fn brute(n: usize, edges: &[ClusterEdge]) -> Option<i64> {
        brute_force_min_weight(n, |u, v| {
            edges
                .iter()
                .filter(|e| {
                    (e.u as usize, e.v as usize) == (u, v) || (e.u as usize, e.v as usize) == (v, u)
                })
                .map(|e| e.weight)
                .min()
        })
    }

    #[test]
    fn empty_graph_is_trivially_matched() {
        let (pairs, total) = solve_fresh(0, &[]);
        assert!(pairs.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn two_vertices_single_edge() {
        let (pairs, total) = solve_fresh(2, &[ClusterEdge::new(0, 1, 7)]);
        assert_eq!(pairs, vec![(0, 1)]);
        assert_eq!(total, 7);
    }

    #[test]
    fn four_vertices_chooses_cheaper_pairing() {
        let edges = [
            ClusterEdge::new(0, 1, 1),
            ClusterEdge::new(2, 3, 1),
            ClusterEdge::new(0, 2, 10),
            ClusterEdge::new(1, 3, 10),
            ClusterEdge::new(0, 3, 10),
            ClusterEdge::new(1, 2, 10),
        ];
        let (pairs, total) = solve_fresh(4, &edges);
        assert_eq!(total, 2);
        assert_eq!(pairs, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn forced_expensive_pairing() {
        let edges = [
            ClusterEdge::new(0, 1, 1),
            ClusterEdge::new(0, 2, 1),
            ClusterEdge::new(0, 3, 1),
            ClusterEdge::new(1, 2, 50),
            ClusterEdge::new(1, 3, 60),
            ClusterEdge::new(2, 3, 70),
        ];
        let (_, total) = solve_fresh(4, &edges);
        assert_eq!(total, 51);
    }

    #[test]
    fn triangles_joined_by_bridge_force_blossoms() {
        // Two odd cycles joined by one cheap bridge: the solver must
        // shrink both triangles to route the matching through the
        // bridge.
        let edges = [
            ClusterEdge::new(0, 1, 2),
            ClusterEdge::new(1, 2, 2),
            ClusterEdge::new(0, 2, 2),
            ClusterEdge::new(3, 4, 2),
            ClusterEdge::new(4, 5, 2),
            ClusterEdge::new(3, 5, 2),
            ClusterEdge::new(2, 3, 1),
        ];
        let (pairs, total) = solve_fresh(6, &edges);
        assert_eq!(total, 5);
        assert!(pairs.contains(&(2, 3)), "bridge must be matched: {pairs:?}");
    }

    #[test]
    fn zero_weight_edges_are_allowed() {
        let edges = [
            ClusterEdge::new(0, 1, 0),
            ClusterEdge::new(2, 3, 0),
            ClusterEdge::new(0, 2, 5),
            ClusterEdge::new(1, 3, 5),
        ];
        let (_, total) = solve_fresh(4, &edges);
        assert_eq!(total, 0);
    }

    #[test]
    #[should_panic(expected = "no perfect matching")]
    fn star_graph_panics() {
        // All edges share vertex 0, so 1..3 cannot pair up.
        let edges =
            [ClusterEdge::new(0, 1, 1), ClusterEdge::new(0, 2, 1), ClusterEdge::new(0, 3, 1)];
        let _ = solve_fresh(4, &edges);
    }

    #[test]
    #[should_panic(expected = "negative weight")]
    fn negative_weight_rejected() {
        let _ = solve_fresh(2, &[ClusterEdge::new(0, 1, -3)]);
    }

    #[test]
    #[should_panic(expected = "odd vertex count")]
    fn odd_vertex_count_rejected() {
        let _ = solve_fresh(3, &[ClusterEdge::new(0, 1, 1)]);
    }

    #[test]
    fn matches_brute_force_on_random_sparse_graphs() {
        // The transcription pin: random sparse graphs (only keeping
        // those with a perfect matching) must agree with the
        // exponential reference on every instance, across sizes that
        // force deep blossom nesting.
        let mut rng = SimRng::from_seed(0xB10550);
        let mut tested = 0u32;
        for n in [4usize, 6, 8, 10, 12] {
            for _case in 0..200 {
                // Random edge set over a Hamiltonian-ish backbone so
                // perfect matchings usually exist; skip instances
                // without one.
                let mut edges = Vec::new();
                for u in 0..n as u32 {
                    for v in (u + 1)..n as u32 {
                        if rng.bernoulli(0.45) {
                            edges.push(ClusterEdge::new(u, v, (rng.next_u64() % 16) as i64));
                        }
                    }
                }
                let Some(expect) = brute(n, &edges) else { continue };
                tested += 1;
                let (pairs, total) = solve_fresh(n, &edges);
                assert_eq!(total, expect, "n={n} edges={edges:?}");
                assert_eq!(pairs.len(), n / 2, "matching must be perfect");
                let mut seen = vec![false; n];
                for &(u, v) in &pairs {
                    assert!(!seen[u] && !seen[v], "vertex reused in {pairs:?}");
                    seen[u] = true;
                    seen[v] = true;
                }
            }
        }
        assert!(tested > 300, "only {tested} solvable instances generated");
    }

    #[test]
    fn arena_reuse_across_sizes_matches_fresh_runs() {
        let mut arena = BlossomArena::new();
        let mut rng = SimRng::from_seed(0xA2E4A);
        for _case in 0..150 {
            let n = 2 * (1 + rng.below(6));
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.bernoulli(0.6) {
                        edges.push(ClusterEdge::new(u, v, (rng.next_u64() % 9) as i64));
                    }
                }
            }
            if brute(n, &edges).is_none() {
                continue;
            }
            let mut reused = Vec::new();
            let total_reused = arena.solve(n, &edges, &mut reused);
            let (fresh, total_fresh) = solve_fresh(n, &edges);
            assert_eq!(total_reused, total_fresh, "n={n} edges={edges:?}");
            assert_eq!(reused, fresh, "reused arena must not change the matching");
        }
    }
}
