//! In-solver sparse blossom matching: exact minimum-weight perfect
//! matching over an explicit *edge list* instead of a dense all-pairs
//! matrix.
//!
//! This is the solver behind [`crate::SparseDecoder`]'s per-cluster
//! matching. The decoder hands it the cluster's collision edges (the
//! sparse structure [`crate::regions`] already discovered with the
//! lattice's O(1) distance tables) and it runs Edmonds' primal–dual
//! blossom algorithm directly on them: grow alternating trees from the
//! exposed vertices, adjust dual variables (each vertex dual is the
//! dynamic radius of that event's matching region — it grows while the
//! vertex is an outer tree node and shrinks while it is inner), *shrink*
//! every odd alternating cycle into a blossom node, and lazily expand
//! blossoms whose dual reaches zero. The implementation follows the
//! van Rantwijk formulation of Galil's exposition — the standard
//! edge-list O(V·E) -per-stage structure — so the cost of matching a
//! cluster scales with how many region collisions it actually contains,
//! not with the square of its event count.
//!
//! Minimum-weight **perfect** matching is obtained by maximizing the
//! complemented weights `2·(w_max − w)` under the maximum-cardinality
//! rule: every input graph the decoder builds contains a perfect
//! matching (each event can always exit through its own boundary twin),
//! so the maximum-cardinality maximum-weight matching is exactly the
//! minimum-weight perfect one. Doubling keeps every dual variable and
//! slack integral.
//!
//! All solver state lives in a caller-owned [`BlossomArena`] that
//! regrows monotonically and is reset — never reallocated — per solve,
//! so the decode hot path stays allocation-free once warm.
//!
//! **Dual adjustment is slack-ordered**: instead of re-scanning every
//! vertex and blossom per substage for the smallest dual step, the
//! solver keeps a lazy priority queue of candidate steps. Each entry is
//! keyed by `delta-at-push + T`, where `T` is the total dual adjustment
//! applied so far this stage — a normalization that makes keys
//! *invariant* under later adjustments (a free-vertex edge's slack and
//! a T-blossom's dual both shrink at exactly the rate `T` grows, and an
//! S–S edge's half-slack likewise). Entries go stale only through
//! structural changes (labels, blossom membership, better best-edges),
//! all of which push fresh entries, so popped entries are validated
//! against current structure and discarded or key-corrected; the first
//! entry that validates exactly is the true minimum. Debug builds
//! cross-check every chosen delta against the reference linear scan.
//!
//! Correctness is pinned three ways: in-module property tests against
//! the exponential reference matcher, the brute-force cluster suite in
//! `tests/properties.rs`, and the chained-cluster differential fuzz
//! sweep against the dense blossom in `tests/sparse_vs_dense.rs`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

const NONE: i32 = -1;

/// One undirected edge of a cluster graph, with its weight under the
/// original minimization objective (`weight >= 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterEdge {
    /// First endpoint (vertex index).
    pub u: u32,
    /// Second endpoint (vertex index, `!= u`).
    pub v: u32,
    /// Non-negative matching weight of pairing `u` with `v`.
    pub weight: i64,
}

impl ClusterEdge {
    /// Convenience constructor.
    #[must_use]
    pub fn new(u: u32, v: u32, weight: i64) -> Self {
        Self { u, v, weight }
    }
}

/// Sentinel in [`WarmStart::duals`] for "no hint for this vertex".
pub const NO_HINT: i64 = i64::MIN;

/// One blossom of an exported warm start (see
/// [`BlossomArena::export_warm`]): enough of the shrunken odd cycle to
/// re-instantiate it in a later solve over (a superset of) the same
/// vertices. Serialized bottom-up per subtree; indices are positions in
/// the same exported list.
#[derive(Debug, Clone, Default)]
pub struct StoredBlossom {
    /// Position of the enclosing blossom in the same list, or -1 for a
    /// subtree root (a top-level blossom at export time).
    pub parent: i32,
    /// The blossom dual `z` (≥ 0; subtree roots have `z > 0`).
    pub z: i64,
    /// Base vertex (local id).
    pub base: u32,
    /// The odd cycle's children in order: `v << 1` for a vertex `v`,
    /// `(i << 1) | 1` for the blossom at list position `i`.
    pub childs: Vec<u32>,
    /// Connecting edges of the cycle, oriented like the arena's
    /// endpoint lists: `(from, to)` vertex pairs such that entry `i`
    /// enters child `i + 1` (wrapping) through vertex `to`.
    pub endps: Vec<(u32, u32)>,
}

/// Remaps an exported blossom forest through a vertex renaming,
/// appending the subtrees that survive it to `out` (list positions and
/// parent links re-based onto `out`). A subtree survives only if `map`
/// keeps every vertex it references; a dropped subtree is flattened
/// instead — each surviving member's entry in `duals` (the *new*-id
/// dual hints) absorbs the z of every stored blossom that held it, so
/// the hints stay dual-feasible without the structure.
pub(crate) fn remap_stored_blossoms(
    stored: &[StoredBlossom],
    mut map: impl FnMut(u32) -> Option<u32>,
    duals: &mut [i64],
    out: &mut Vec<StoredBlossom>,
) {
    let nsb = stored.len();
    let (mut zsum, mut rootof) = (vec![0i64; nsb], vec![0u32; nsb]);
    let mut dead = vec![false; nsb];
    for i in 0..nsb {
        let sb = &stored[i];
        debug_assert!(sb.parent < i as i32, "stored parents precede children");
        if sb.parent < 0 {
            (zsum[i], rootof[i]) = (sb.z, i as u32);
        } else {
            let p = sb.parent as usize;
            (zsum[i], rootof[i]) = (sb.z + zsum[p], rootof[p]);
        }
        let verts = sb
            .childs
            .iter()
            .filter(|&&c| c & 1 == 0)
            .map(|&c| c >> 1)
            .chain(sb.endps.iter().flat_map(|&(f, t)| [f, t]))
            .chain([sb.base]);
        for v in verts {
            if map(v).is_none() {
                dead[rootof[i] as usize] = true;
                break;
            }
        }
    }
    let mut newpos = vec![0u32; nsb];
    let mut next = out.len() as u32;
    for i in 0..nsb {
        if !dead[rootof[i] as usize] {
            newpos[i] = next;
            next += 1;
        }
    }
    for i in 0..nsb {
        let sb = &stored[i];
        if dead[rootof[i] as usize] {
            // Flatten: the subtree is gone, its members keep its weight.
            for &c in &sb.childs {
                if c & 1 == 0 {
                    if let Some(nv) = map(c >> 1) {
                        let nv = nv as usize;
                        if nv < duals.len() && duals[nv] != NO_HINT {
                            duals[nv] += zsum[i];
                        }
                    }
                }
            }
            continue;
        }
        // btwc-allow(PANIC-HOT): compaction invariant — `map` is total
        // over vertices of surviving subtrees by construction of the
        // remap table a few lines up; hostile input cannot reach this.
        let mut remap = |v: u32| map(v).expect("surviving subtrees map every vertex");
        out.push(StoredBlossom {
            parent: if sb.parent < 0 { -1 } else { newpos[sb.parent as usize] as i32 },
            z: sb.z,
            base: remap(sb.base),
            childs: sb
                .childs
                .iter()
                .map(|&c| {
                    if c & 1 == 0 {
                        remap(c >> 1) << 1
                    } else {
                        (newpos[(c >> 1) as usize] << 1) | 1
                    }
                })
                .collect(),
            endps: sb.endps.iter().map(|&(f, t)| (remap(f), remap(t))).collect(),
        });
    }
}

/// A warm start for [`BlossomArena::solve_warm`]: the surviving primal
/// (matched pairs) and dual (vertex radii) state of a previous, closely
/// related solve — typically the same cluster one window-slide ago.
///
/// A warm start is a *hint*, never a contract: pairs whose edge is
/// missing or no longer tight are dropped, duals that violate dual
/// feasibility are repaired upward, and vertices marked [`NO_HINT`]
/// start cold. The solve result is therefore exactly the optimum of the
/// given graph regardless of hint quality — a perfect hint just skips
/// straight to the few augmentations the slide actually changed.
#[derive(Debug, Clone, Copy, Default)]
pub struct WarmStart<'a> {
    /// Per-vertex dual hints ([`NO_HINT`] entries and vertices past the
    /// end start cold).
    pub duals: &'a [i64],
    /// Matched pairs `(u, v)` to pre-seed (kept only if the edge exists
    /// and is tight under the repaired duals).
    pub pairs: &'a [(u32, u32)],
    /// The complement base `w_base` the duals were exported under (see
    /// [`BlossomArena::export_warm`]); the solver shifts them onto its
    /// own base.
    pub w_base: i64,
    /// Surviving blossoms of the exporting solve, to re-instantiate
    /// (each validated against the current graph and dropped — its dual
    /// flattened into its members' — if anything no longer fits).
    pub blossoms: &'a [StoredBlossom],
}

/// Recycled working state for the sparse blossom solver: alternating
/// tree labels, blossom child/endpoint lists, dual variables, and the
/// per-solve edge-list graph. Grows monotonically to the largest
/// cluster seen and is never shrunk; [`BlossomArena::solve`] resets it
/// in place.
#[derive(Debug, Default)]
pub struct BlossomArena {
    /// Number of real vertices of the current solve.
    n: usize,
    /// Number of edges of the current solve.
    m: usize,
    // --- the graph (edge list + CSR adjacency) ---
    edge_u: Vec<u32>,
    edge_v: Vec<u32>,
    /// Complemented, doubled weights `2 * (w_max - w)` (maximized).
    wt: Vec<i64>,
    /// Original minimization weights (for the reported total).
    orig: Vec<i64>,
    /// `endpoint[2k] = u`, `endpoint[2k + 1] = v` of edge `k`.
    endpoint: Vec<u32>,
    /// CSR offsets into `nb`, length `n + 1`.
    nb_off: Vec<u32>,
    /// Remote endpoints of the edges incident to each vertex.
    nb: Vec<u32>,
    // --- solver state (vertex- or blossom-indexed, length 2n) ---
    /// `mate[v]` = remote endpoint of v's matched edge, or -1.
    mate: Vec<i32>,
    /// 0 free, 1 S (outer), 2 T (inner), 5 = S + breadcrumb, -1 unused.
    label: Vec<i8>,
    /// Remote endpoint of the edge through which the label was claimed.
    labelend: Vec<i32>,
    /// Top-level blossom containing each vertex.
    inblossom: Vec<u32>,
    blossomparent: Vec<i32>,
    /// Base vertex of each blossom (-1 for unused blossom slots).
    blossombase: Vec<i32>,
    /// Ordered sub-blossoms and their connecting edge endpoints.
    blossomchilds: Vec<Vec<u32>>,
    blossomendps: Vec<Vec<u32>>,
    /// Least-slack edge to each neighboring S-blossom, and the cached
    /// per-blossom candidate lists.
    bestedge: Vec<i32>,
    blossombest: Vec<Vec<u32>>,
    has_best: Vec<bool>,
    /// Dual variables: vertex radii and blossom duals.
    dualvar: Vec<i64>,
    /// Edges known to have zero slack.
    allowedge: Vec<bool>,
    queue: Vec<u32>,
    unused: Vec<u32>,
    // --- recycled temporaries ---
    leaves: Vec<u32>,
    leaves2: Vec<u32>,
    scan_path: Vec<u32>,
    cand: Vec<u32>,
    bestedgeto: Vec<i32>,
    // --- lazy dual-step queue (see module docs) ---
    /// Min-heap of `(delta-at-push + t_now-at-push, kind, id)` where
    /// kind 2 = free vertex `id` with a best edge to an S-blossom,
    /// kind 3 = top-level S-blossom `id` with a best edge to another
    /// S-blossom, kind 4 = top-level T-blossom `id` awaiting expansion.
    /// The tuple order also reproduces the reference scan's tie-break
    /// (type 2 before 3 before 4, then lowest index).
    delta_heap: BinaryHeap<Reverse<(i64, u8, u32)>>,
    /// Total dual adjustment applied so far this stage; normalizes heap
    /// keys so they stay comparable as duals move.
    t_now: i64,
    /// Complement base of the current solve: weights are maximized as
    /// `2 * (w_base - w)`. At least the largest edge weight; a warm
    /// start can raise it (never lower — duals shift monotonically).
    w_base: i64,
    /// Largest complemented weight (the cold dual initializer).
    max_w2: i64,
    /// Outcome of the last solve's warm seeding (all zeros for a cold
    /// solve); read by the decoder's telemetry after each solve.
    warm_stats: WarmSeedStats,
}

/// What [`BlossomArena::solve_warm`] did with the hint's stored blossom
/// forest: how many root subtrees the hint offered, how many survived
/// every screen and were re-instantiated, and how many each screen
/// flattened instead. Deterministic per (graph, hint) — the screens
/// never consult scheduling state.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WarmSeedStats {
    /// Root subtrees present in the hint.
    pub subtrees_offered: u64,
    /// Subtrees that passed every screen and were re-instantiated.
    pub subtrees_imported: u64,
    /// Subtrees flattened by the structural screen (malformed shape,
    /// out-of-range vertices, negative duals).
    pub rejected_structure: u64,
    /// Subtrees flattened because their z chain could not cover a
    /// negative-slack edge (dual infeasibility).
    pub rejected_feasibility: u64,
    /// Subtrees flattened because a stored cycle edge was no longer
    /// exactly tight under its z chain.
    pub rejected_tightness: u64,
}

impl BlossomArena {
    /// An empty arena; it sizes itself on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// What the last solve's warm seeding did with its hint (all zeros
    /// after a cold solve).
    #[must_use]
    pub fn warm_seed_stats(&self) -> WarmSeedStats {
        self.warm_stats
    }

    /// Computes a minimum-weight perfect matching of `num_vertices`
    /// vertices over the given edge list, appending the matched pairs
    /// (each `(u, v)` with `u < v`) into `pairs` and returning the
    /// total weight under the original minimization weights.
    ///
    /// # Panics
    ///
    /// Panics if an edge is out of range, a weight is negative, or the
    /// graph has no perfect matching (the decoder's cluster graphs
    /// always do: every event can exit through its own boundary twin).
    pub fn solve(
        &mut self,
        num_vertices: usize,
        edges: &[ClusterEdge],
        pairs: &mut Vec<(usize, usize)>,
    ) -> i64 {
        self.solve_warm(num_vertices, edges, pairs, None)
    }

    /// [`BlossomArena::solve`] seeded from the primal/dual state of a
    /// previous related solve (see [`WarmStart`]). The result is the
    /// exact optimum of *this* graph — hints only shorten the road:
    /// every surviving tight matched edge is one augmentation the
    /// stages no longer have to rediscover.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`BlossomArena::solve`].
    pub fn solve_warm(
        &mut self,
        num_vertices: usize,
        edges: &[ClusterEdge],
        pairs: &mut Vec<(usize, usize)>,
        warm: Option<&WarmStart<'_>>,
    ) -> i64 {
        pairs.clear();
        self.warm_stats = WarmSeedStats::default();
        if num_vertices == 0 {
            return 0;
        }
        assert!(num_vertices.is_multiple_of(2), "odd vertex count {num_vertices} cannot match");
        self.prepare(num_vertices, edges, warm.map_or(0, |w| w.w_base));
        if let Some(w) = warm {
            self.seed_warm(w);
        }
        let (n, two_n) = (self.n, 2 * self.n);

        for _stage in 0..n {
            // Stage reset: forget labels, best edges, and allowed
            // (zero-slack) markers; duals, mates, and the blossom
            // structure persist across stages.
            self.label[..two_n].fill(0);
            self.labelend[..two_n].fill(NONE);
            self.bestedge[..two_n].fill(NONE);
            for b in n..two_n {
                self.blossombest[b].clear();
                self.has_best[b] = false;
            }
            self.allowedge[..self.m].fill(false);
            self.queue.clear();
            self.delta_heap.clear();
            self.t_now = 0;
            for v in 0..n {
                if self.mate[v] == NONE && self.label[self.inblossom[v] as usize] == 0 {
                    self.assign_label(v, 1, NONE);
                }
            }

            let mut augmented = false;
            loop {
                // Substage: scan S-vertices until an augmenting path is
                // found or the queue drains.
                'scan: while !augmented {
                    let Some(v) = self.queue.pop() else { break };
                    let v = v as usize;
                    debug_assert_eq!(self.label[self.inblossom[v] as usize], 1);
                    for pi in self.nb_off[v] as usize..self.nb_off[v + 1] as usize {
                        let p = self.nb[pi] as usize;
                        let k = p / 2;
                        let w = self.endpoint[p] as usize;
                        if self.inblossom[v] == self.inblossom[w] {
                            continue;
                        }
                        let mut kslack = 0;
                        if !self.allowedge[k] {
                            kslack = self.slack(k);
                            if kslack <= 0 {
                                self.allowedge[k] = true;
                            }
                        }
                        let bw = self.inblossom[w] as usize;
                        if self.allowedge[k] {
                            if self.label[bw] == 0 {
                                // (C1) w is free: grow the tree.
                                self.assign_label(w, 2, (p ^ 1) as i32);
                            } else if self.label[bw] == 1 {
                                // (C2) two S-blossoms meet: either an
                                // odd cycle to shrink or an augmenting
                                // path.
                                let base = self.scan_blossom(v as i32, w as i32);
                                if base >= 0 {
                                    self.add_blossom(base as usize, k);
                                } else {
                                    self.augment_matching(k);
                                    augmented = true;
                                    continue 'scan;
                                }
                            } else if self.label[w] == 0 {
                                // w is inside a T-blossom but unlabeled:
                                // remember how it was reached.
                                debug_assert_eq!(self.label[bw], 2);
                                self.label[w] = 2;
                                self.labelend[w] = (p ^ 1) as i32;
                            }
                        } else if self.label[bw] == 1 {
                            // Track least-slack edges for the dual step.
                            let b = self.inblossom[v] as usize;
                            if self.bestedge[b] == NONE
                                || kslack < self.slack(self.bestedge[b] as usize)
                            {
                                self.bestedge[b] = k as i32;
                                self.push_delta3(b, k);
                            }
                        } else if self.label[w] == 0
                            && (self.bestedge[w] == NONE
                                || kslack < self.slack(self.bestedge[w] as usize))
                        {
                            self.bestedge[w] = k as i32;
                            self.push_delta2(w, k);
                        }
                    }
                }
                if augmented {
                    break;
                }

                // Dual adjustment: the cheapest move that creates a new
                // tight edge or frees a blossom for expansion, found by
                // draining the lazy heap instead of rescanning every
                // vertex and blossom. Popped entries are validated
                // against current structure: structurally dead ones are
                // discarded, live ones whose true delta moved since the
                // push are re-inserted with the corrected key, and the
                // first exact match is the minimum (see module docs).
                let mut deltatype = -1;
                let mut delta = 0i64;
                let mut deltaedge = NONE;
                let mut deltablossom = NONE;
                while let Some(Reverse((key, kind, id))) = self.delta_heap.pop() {
                    let id = id as usize;
                    let claimed = key - self.t_now;
                    let current = match kind {
                        2 => {
                            if self.label[self.inblossom[id] as usize] == 0
                                && self.bestedge[id] != NONE
                            {
                                Some(self.slack(self.bestedge[id] as usize))
                            } else {
                                None
                            }
                        }
                        3 => {
                            if self.blossomparent[id] == NONE
                                && self.label[id] == 1
                                && self.bestedge[id] != NONE
                            {
                                let kslack = self.slack(self.bestedge[id] as usize);
                                debug_assert_eq!(kslack % 2, 0, "doubled weights keep slacks even");
                                Some(kslack / 2)
                            } else {
                                None
                            }
                        }
                        _ => {
                            if id >= n
                                && self.blossombase[id] >= 0
                                && self.blossomparent[id] == NONE
                                && self.label[id] == 2
                            {
                                Some(self.dualvar[id])
                            } else {
                                None
                            }
                        }
                    };
                    match current {
                        None => {}
                        Some(d) if d != claimed => {
                            self.delta_heap.push(Reverse((d + self.t_now, kind, id as u32)));
                        }
                        Some(d) => {
                            delta = d;
                            deltatype = i32::from(kind);
                            if kind == 4 {
                                deltablossom = id as i32;
                            } else {
                                deltaedge = self.bestedge[id];
                            }
                            break;
                        }
                    }
                }
                if deltatype == -1 {
                    // Heap drained with no live candidate: a
                    // maximum-cardinality optimum is reached (the
                    // perfect matching, for our graphs).
                    deltatype = 1;
                    delta = self.dualvar[..n].iter().copied().min().unwrap_or(0).max(0);
                }
                #[cfg(debug_assertions)]
                {
                    let (ref_type, ref_delta) = self.reference_delta();
                    debug_assert_eq!(
                        delta, ref_delta,
                        "lazy heap delta diverged from linear scan \
                         (heap type {deltatype}, scan type {ref_type})"
                    );
                    debug_assert_eq!(
                        deltatype == 1,
                        ref_type == 1,
                        "heap and scan disagree on optimality"
                    );
                }

                for v in 0..n {
                    match self.label[self.inblossom[v] as usize] {
                        1 => self.dualvar[v] -= delta,
                        2 => self.dualvar[v] += delta,
                        _ => {}
                    }
                }
                for b in n..two_n {
                    if self.blossombase[b] >= 0 && self.blossomparent[b] == NONE {
                        match self.label[b] {
                            1 => self.dualvar[b] += delta,
                            2 => self.dualvar[b] -= delta,
                            _ => {}
                        }
                    }
                }
                // Keys already in the heap were normalized with the old
                // total; advancing it keeps `key - t_now` equal to each
                // candidate's remaining delta.
                self.t_now += delta;

                match deltatype {
                    1 => break,
                    2 => {
                        let k = deltaedge as usize;
                        self.allowedge[k] = true;
                        let (mut i, j) = (self.edge_u[k], self.edge_v[k]);
                        if self.label[self.inblossom[i as usize] as usize] == 0 {
                            i = j;
                        }
                        debug_assert_eq!(self.label[self.inblossom[i as usize] as usize], 1);
                        self.queue.push(i);
                    }
                    3 => {
                        let k = deltaedge as usize;
                        self.allowedge[k] = true;
                        debug_assert_eq!(
                            self.label[self.inblossom[self.edge_u[k] as usize] as usize],
                            1
                        );
                        self.queue.push(self.edge_u[k]);
                    }
                    _ => self.expand_blossom(deltablossom as usize, false),
                }
            }

            if !augmented {
                break;
            }
            // End of stage: expand S-blossoms whose dual hit zero.
            for b in n..two_n {
                if self.blossomparent[b] == NONE
                    && self.blossombase[b] >= 0
                    && self.label[b] == 1
                    && self.dualvar[b] == 0
                {
                    self.expand_blossom(b, true);
                }
            }
        }

        let mut total = 0i64;
        for v in 0..n {
            let p = self.mate[v];
            assert!(p >= 0, "cluster graph has no perfect matching (vertex {v} exposed)");
            let u = self.endpoint[p as usize] as usize;
            if v < u {
                pairs.push((v, u));
                total += self.orig[p as usize / 2];
            }
        }
        total
    }

    /// Sizes and resets every table for a solve over `n` vertices and
    /// the given edges (no allocation once grown). `w_base_floor`
    /// raises the complement base above the edge maximum so warm duals
    /// exported under a larger base stay directly comparable.
    fn prepare(&mut self, n: usize, edges: &[ClusterEdge], w_base_floor: i64) {
        let m = edges.len();
        self.n = n;
        self.m = m;
        let two_n = 2 * n;

        self.edge_u.clear();
        self.edge_v.clear();
        self.orig.clear();
        self.endpoint.clear();
        let mut w_max = 0i64;
        for e in edges {
            assert!(
                (e.u as usize) < n && (e.v as usize) < n && e.u != e.v,
                "edge ({}, {}) out of range for {n} vertices",
                e.u,
                e.v
            );
            assert!(e.weight >= 0, "negative weight {} on edge ({}, {})", e.weight, e.u, e.v);
            w_max = w_max.max(e.weight);
            self.edge_u.push(e.u);
            self.edge_v.push(e.v);
            self.orig.push(e.weight);
            self.endpoint.push(e.u);
            self.endpoint.push(e.v);
        }
        // Complement and double: maximize 2 * (w_base - w).
        self.w_base = w_max.max(w_base_floor);
        let w_base = self.w_base;
        self.wt.clear();
        self.wt.extend(self.orig.iter().map(|&w| 2 * (w_base - w)));

        // CSR adjacency of remote endpoints.
        self.nb_off.clear();
        self.nb_off.resize(n + 1, 0);
        for e in edges {
            self.nb_off[e.u as usize + 1] += 1;
            self.nb_off[e.v as usize + 1] += 1;
        }
        for i in 0..n {
            self.nb_off[i + 1] += self.nb_off[i];
        }
        self.nb.clear();
        self.nb.resize(2 * m, 0);
        let mut cursor = std::mem::take(&mut self.leaves);
        cursor.clear();
        cursor.extend_from_slice(&self.nb_off[..n]);
        for (k, e) in edges.iter().enumerate() {
            self.nb[cursor[e.u as usize] as usize] = (2 * k + 1) as u32;
            cursor[e.u as usize] += 1;
            self.nb[cursor[e.v as usize] as usize] = (2 * k) as u32;
            cursor[e.v as usize] += 1;
        }
        self.leaves = cursor;

        self.mate.clear();
        self.mate.resize(n, NONE);
        self.label.clear();
        self.label.resize(two_n, 0);
        self.labelend.clear();
        self.labelend.resize(two_n, NONE);
        self.inblossom.clear();
        self.inblossom.extend(0..n as u32);
        self.blossomparent.clear();
        self.blossomparent.resize(two_n, NONE);
        self.blossombase.clear();
        self.blossombase.extend(0..n as i32);
        self.blossombase.resize(two_n, NONE);
        self.bestedge.clear();
        self.bestedge.resize(two_n, NONE);
        self.max_w2 = self.wt.iter().copied().max().unwrap_or(0);
        self.dualvar.clear();
        self.dualvar.resize(n, self.max_w2);
        self.dualvar.resize(two_n, 0);
        if self.blossomchilds.len() < two_n {
            self.blossomchilds.resize_with(two_n, Vec::new);
            self.blossomendps.resize_with(two_n, Vec::new);
            self.blossombest.resize_with(two_n, Vec::new);
        }
        for b in 0..two_n {
            self.blossomchilds[b].clear();
            self.blossomendps[b].clear();
            self.blossombest[b].clear();
        }
        self.has_best.clear();
        self.has_best.resize(two_n, false);
        self.allowedge.clear();
        self.allowedge.resize(m, false);
        self.queue.clear();
        self.unused.clear();
        self.unused.extend(n as u32..two_n as u32);
    }

    /// Seeds duals, blossoms, and matching from `warm` (called right
    /// after [`BlossomArena::prepare`], before any stage runs).
    ///
    /// Hinted duals are shifted onto the current complement base;
    /// unhinted vertices start cold at `2 * max_w2 (+ parity)`, which
    /// dominates every incident slack against any non-negative neighbor
    /// dual. Stored blossoms are re-instantiated wherever they still
    /// fit the graph exactly; a subtree that does not — or whose member
    /// duals the parity normalization had to perturb — is *flattened*:
    /// each member's dual absorbs the blossom duals above it, which
    /// keeps every edge it buried feasible on vertex slacks alone. A
    /// repair pass then raises a free endpoint of any remaining
    /// negative-slack edge (raising a dual only ever *increases*
    /// slacks), and finally the hinted pairs whose edge exists and is
    /// tight get matched. The primal–dual stages are exact from any
    /// dual-feasible state with a tight matching and valid blossoms, so
    /// hint quality affects speed, never the result.
    fn seed_warm(&mut self, warm: &WarmStart<'_>) {
        let n = self.n;
        debug_assert!(self.w_base >= warm.w_base, "prepare floors the base at the hint's");
        let shift = 2 * (self.w_base - warm.w_base);
        let hint = |v: usize| warm.duals.get(v).copied().unwrap_or(NO_HINT);
        // The dual steps inherit cold start's even-slack invariant from
        // a uniform-parity start (doubled weights keep `du + dv - 2wt`
        // even whenever all duals share a parity — all-odd works as
        // well as all-even). Exporting solves drift between the two
        // classes (a type-3 dual step of odd size flips its tree), so
        // merged hints are routinely mixed; everything below normalizes
        // back to the *majority* class: whole off-class subtrees shift
        // `+1` against their root `z` (tightness-preserving), matched
        // off-class pairs shift `+1`/`-1`, and stray singles round up.
        let (mut evens, mut odds) = (0u32, 0u32);
        for v in 0..n {
            let h = hint(v);
            if h != NO_HINT {
                if h & 1 == 0 {
                    evens += 1;
                } else {
                    odds += 1;
                }
            }
        }
        let parity = i64::from(odds > evens);
        let cold = 2 * self.max_w2 + parity;
        for v in 0..n {
            let h = hint(v);
            self.dualvar[v] = if h == NO_HINT { cold } else { h + shift };
        }

        // --- stored blossom forest bookkeeping ---
        // Cumulative z (own + stored ancestors), subtree root, and
        // depth per stored node; the deepest stored node holding each
        // vertex. Serialization pushes parents before children, so one
        // forward pass resolves the chains.
        let stored = warm.blossoms;
        let nsb = stored.len();
        self.warm_stats.subtrees_offered = stored.iter().filter(|sb| sb.parent < 0).count() as u64;
        let mut zsum = vec![0i64; nsb];
        let mut rootof = vec![0u32; nsb];
        let mut depth = vec![0u32; nsb];
        let mut alive = vec![true; nsb];
        let mut vsub = vec![NONE; n];
        for i in 0..nsb {
            let sb = &stored[i];
            debug_assert!(sb.parent < i as i32, "stored parents precede children");
            if sb.parent < 0 {
                (zsum[i], rootof[i], depth[i]) = (sb.z, i as u32, 0);
            } else {
                let p = sb.parent as usize;
                (zsum[i], rootof[i], depth[i]) = (sb.z + zsum[p], rootof[p], depth[p] + 1);
            }
            for &c in &sb.childs {
                if c & 1 == 0 && ((c >> 1) as usize) < n {
                    vsub[(c >> 1) as usize] = i as i32;
                }
            }
        }
        // Dropping a subtree = flattening it: every member's dual
        // absorbs the z of each stored blossom that held it, restoring
        // feasibility of the edges it buried on vertex slacks alone.
        // Duals only rise, so a kill never creates a violation
        // elsewhere.
        fn kill(
            root: usize,
            stored: &[StoredBlossom],
            zsum: &[i64],
            rootof: &[u32],
            alive: &mut [bool],
            vsub: &mut [i32],
            dualvar: &mut [i64],
        ) {
            if !alive[root] {
                return;
            }
            alive[root] = false;
            for i in root..stored.len() {
                if rootof[i] as usize != root {
                    continue;
                }
                for &c in &stored[i].childs {
                    let v = (c >> 1) as usize;
                    if c & 1 == 0 && v < vsub.len() && vsub[v] != NONE {
                        dualvar[v] += zsum[i];
                        vsub[v] = NONE;
                    }
                }
            }
        }
        // Structural screen: a subtree imports only if its shape is a
        // valid blossom forest over in-range vertices (odd cycles,
        // parent links matching list order, base threading through
        // `childs[0]`, non-negative duals) and no member dual needs the
        // per-vertex parity fix.
        for i in 0..nsb {
            let sb = &stored[i];
            let r = rootof[i] as usize;
            if !alive[r] {
                continue;
            }
            let len = sb.childs.len();
            let mut ok = len >= 3
                && len & 1 == 1
                && sb.endps.len() == len
                && (sb.base as usize) < n
                && sb.z >= 0
                && (sb.parent >= 0 || sb.z > 0);
            if ok {
                for &c in &sb.childs {
                    let x = (c >> 1) as usize;
                    ok &= if c & 1 == 0 { x < n } else { x < nsb && stored[x].parent == i as i32 };
                }
                ok &= {
                    let c0 = sb.childs[0];
                    let x = (c0 >> 1) as usize;
                    if c0 & 1 == 0 {
                        sb.base == c0 >> 1
                    } else {
                        x < nsb && stored[x].base == sb.base
                    }
                };
            }
            if !ok {
                self.warm_stats.rejected_structure += 1;
                kill(r, stored, &zsum, &rootof, &mut alive, &mut vsub, &mut self.dualvar);
            }
        }
        // Dual feasibility against the imported structure: a negative
        // vertex-slack edge buried inside one subtree may owe its
        // feasibility to the blossom duals above it
        // (`du + dv + 2·Σ z ≥ 2wt` over common containers); anything
        // the z chain cannot cover — or a negative edge *between* two
        // subtrees, which shares no container — forfeits a subtree so
        // the plain repair below can raise a freed endpoint.
        for k in 0..self.m {
            let s = self.slack(k);
            if s >= 0 {
                continue;
            }
            let (u, v) = (self.edge_u[k] as usize, self.edge_v[k] as usize);
            let (su, sv) = (vsub[u], vsub[v]);
            if su < 0 || sv < 0 {
                continue;
            }
            let (mut a, mut b) = (su as usize, sv as usize);
            if rootof[a] != rootof[b] {
                let t = if self.dualvar[u] <= self.dualvar[v] { a } else { b };
                let t = rootof[t] as usize;
                self.warm_stats.rejected_feasibility += 1;
                kill(t, stored, &zsum, &rootof, &mut alive, &mut vsub, &mut self.dualvar);
                continue;
            }
            while depth[a] > depth[b] {
                a = stored[a].parent as usize;
            }
            while depth[b] > depth[a] {
                b = stored[b].parent as usize;
            }
            while a != b {
                a = stored[a].parent as usize;
                b = stored[b].parent as usize;
            }
            if s + 2 * zsum[a] < 0 {
                let r = rootof[a] as usize;
                self.warm_stats.rejected_feasibility += 1;
                kill(r, stored, &zsum, &rootof, &mut alive, &mut vsub, &mut self.dualvar);
            }
        }
        // Cycle tightness: every stored cycle edge must still exist and
        // be exactly tight under its z chain (`slack + 2·Σ z = 0`) — a
        // reweighted or vanished edge means the odd cycle no longer
        // certifies optimality, so its subtree flattens instead of
        // importing.
        for i in 0..nsb {
            let r = rootof[i] as usize;
            if !alive[r] {
                continue;
            }
            let zc = 2 * zsum[i];
            let tight = stored[i].endps.iter().all(|&(from, to)| {
                (from as usize) < n && (to as usize) < n && self.resolve_endp(from, to, zc) >= 0
            });
            if !tight {
                self.warm_stats.rejected_tightness += 1;
                kill(r, stored, &zsum, &rootof, &mut alive, &mut vsub, &mut self.dualvar);
            }
        }
        self.warm_stats.subtrees_imported =
            (0..nsb).filter(|&i| stored[i].parent < 0 && alive[i]).count() as u64;
        // Subtree parity shift: a validated subtree's members all share
        // one parity class (its cycle edges are tight, and a tight edge
        // under even weights joins same-parity duals), so an off-class
        // subtree moves wholesale — every member dual `+1` against the
        // root's `z` dropping by one. Cycle tightness is exact at every
        // level (each cycle edge gains `+2` slack, its `Σ z` drops by
        // one), buried-edge feasibility is unchanged for the same
        // reason, and edges leaving the subtree only gain slack. The
        // root's external matched edge does lose tightness (its mate
        // moves `+1` too, or not at all) — the pair simply isn't
        // re-seeded, costing one solver stage instead of the whole
        // structure. Member duals are final after this: the parity fix
        // and repair below only touch vertices outside surviving
        // subtrees.
        let mut zdec = vec![0i64; nsb];
        for r in 0..nsb {
            if !alive[r]
                || stored[r].parent >= 0
                || self.dualvar[stored[r].base as usize] & 1 == parity
            {
                continue;
            }
            zdec[r] = 1;
            for i in r..nsb {
                if rootof[i] as usize != r {
                    continue;
                }
                zsum[i] -= 1;
                for &c in &stored[i].childs {
                    if c & 1 == 0 {
                        self.dualvar[(c >> 1) as usize] += 1;
                    }
                }
            }
        }
        // Parity normalization toward the uniform class: a matched pair
        // shifts +1/−1 (slack-0 preserved), stray off-parity vertices
        // round up (a raise never breaks feasibility; any −2 slack this
        // leaves on a tight unmatched edge is caught by the repair pass
        // below). Surviving-subtree members match the class after the
        // shift above — kills re-introduce off-parity duals via odd z,
        // but only on flattened (unprotected) vertices.
        for &(a, b) in warm.pairs {
            let (a, b) = (a as usize, b as usize);
            if a < n
                && b < n
                && hint(a) != NO_HINT
                && hint(b) != NO_HINT
                && self.dualvar[a] & 1 != parity
                && self.dualvar[b] & 1 != parity
            {
                self.dualvar[a] += 1;
                self.dualvar[b] -= 1;
            }
        }
        for v in 0..n {
            if self.dualvar[v] & 1 != parity {
                self.dualvar[v] += 1;
            }
        }
        // Fresh-event pre-pairing: unhinted vertices start cold, so
        // nothing around them is tight and each costs the solver a full
        // stage. Mutually-nearest unhinted pairs instead drop their
        // duals to meet on their best edge (`du + dv = 2wt`, both on
        // the parity class) — error chains mostly enter as adjacent
        // event pairs, and spare twins pair over zero-cost mirror edges
        // exactly as an optimal solution uses them. A drop can break
        // feasibility toward older structure; the repair pass below
        // re-raises such an endpoint and the pair then simply fails its
        // tightness check at seeding time.
        let mut fresh_pairs: Vec<(u32, u32)> = Vec::new();
        {
            // An unhinted vertex not yet claimed by this pass still
            // sits exactly at `cold` (every claim drops below it).
            let unclaimed = |arena: &Self, x: usize| {
                warm.duals.get(x).copied().unwrap_or(NO_HINT) == NO_HINT && arena.dualvar[x] == cold
            };
            // Nearest unclaimed neighbor (largest complemented weight,
            // ties to the smallest index so tie groups agree).
            let best = |arena: &Self, u: usize| -> (i64, i32) {
                let (mut bw, mut bx) = (i64::MIN, NONE);
                for pi in arena.nb_off[u] as usize..arena.nb_off[u + 1] as usize {
                    let p = arena.nb[pi] as usize;
                    let x = arena.endpoint[p] as usize;
                    let w = arena.wt[p / 2];
                    if unclaimed(arena, x) && (w > bw || (w == bw && (x as i32) < bx)) {
                        (bw, bx) = (w, x as i32);
                    }
                }
                (bw, bx)
            };
            // Mutual-best only: one-sided claims pair noise with noise
            // and cost more repair than they save. Claims free up new
            // mutual pairs (tie groups chain), so sweep until settled.
            loop {
                let mut progress = false;
                for u in 0..n {
                    if !unclaimed(self, u) {
                        continue;
                    }
                    let (w, v) = best(self, u);
                    if v <= u as i32 || best(self, v as usize).1 != u as i32 {
                        continue;
                    }
                    let (mut du, mut dv) = (w, w);
                    if w & 1 != parity {
                        (du, dv) = (w + 1, w - 1);
                    }
                    if dv >= 0 {
                        self.dualvar[u] = du;
                        self.dualvar[v as usize] = dv;
                        fresh_pairs.push((u as u32, v as u32));
                        progress = true;
                    }
                }
                if !progress {
                    break;
                }
            }
        }
        // Repair: raise a free endpoint of every remaining
        // negative-slack edge. Edges buried inside one surviving
        // subtree are *legitimately* negative (their z covers them —
        // checked above); any other negative edge has at least one
        // endpoint outside every surviving subtree, because the
        // feasibility pass flattened one side of each infeasible
        // cross-subtree pair.
        for k in 0..self.m {
            let s = self.slack(k);
            if s >= 0 {
                continue;
            }
            let (u, v) = (self.edge_u[k] as usize, self.edge_v[k] as usize);
            let (iu, iv) = (vsub[u] >= 0, vsub[v] >= 0);
            if iu && iv {
                debug_assert_eq!(
                    rootof[vsub[u] as usize], rootof[vsub[v] as usize],
                    "feasibility pass flattens one side of every infeasible cross-subtree edge"
                );
                continue;
            }
            let t = if iu || (!iv && self.dualvar[u] > self.dualvar[v]) { v } else { u };
            self.dualvar[t] -= s;
        }
        // Re-instantiate the survivors bottom-up (reverse list order
        // builds children before parents) and pre-match their cycle
        // pairs; labels, best-edge caches, and heap state all start
        // clean from `prepare`. Each subtree leaves exactly one vertex
        // unmatched — the root's base, whose external mate the general
        // pair seeding below restores when it survived too.
        let mut arena_id = vec![NONE; nsb];
        for i in (0..nsb).rev() {
            if !alive[rootof[i] as usize] {
                continue;
            }
            let sb = &stored[i];
            // btwc-allow(PANIC-HOT): arena invariant — `unused` is sized
            // to one blossom slot per event, so a pop only fails on
            // internal corruption, not on any decodable input.
            let b = self.unused.pop().expect("n events use at most n blossoms") as usize;
            arena_id[i] = b as i32;
            self.blossombase[b] = sb.base as i32;
            self.dualvar[b] = sb.z - zdec[i];
            let mut childs = std::mem::take(&mut self.blossomchilds[b]);
            let mut endps = std::mem::take(&mut self.blossomendps[b]);
            for (j, (&c, &(from, to))) in sb.childs.iter().zip(&sb.endps).enumerate() {
                let cid = if c & 1 == 0 {
                    (c >> 1) as usize
                } else {
                    arena_id[(c >> 1) as usize] as usize
                };
                self.blossomparent[cid] = b as i32;
                childs.push(cid as u32);
                let q = self.resolve_endp(from, to, 2 * zsum[i]);
                debug_assert!(q >= 0, "validated cycle edges resolve");
                endps.push(q as u32);
                if j & 1 == 1 {
                    let (x, y) = (
                        self.endpoint[q as usize] as usize,
                        self.endpoint[(q ^ 1) as usize] as usize,
                    );
                    debug_assert!(self.mate[x] == NONE && self.mate[y] == NONE);
                    self.mate[x] = q ^ 1;
                    self.mate[y] = q;
                }
            }
            debug_assert_eq!(self.blossombase[b], self.blossombase[childs[0] as usize]);
            self.blossomchilds[b] = childs;
            self.blossomendps[b] = endps;
        }
        for v in 0..n {
            if vsub[v] >= 0 {
                let r = rootof[vsub[v] as usize] as usize;
                debug_assert!(alive[r]);
                self.inblossom[v] = arena_id[r] as u32;
            }
        }
        for &(a, b) in warm.pairs {
            let (a, b) = (a as usize, b as usize);
            if a >= n || b >= n || self.mate[a] != NONE || self.mate[b] != NONE {
                continue;
            }
            if hint(a) == NO_HINT || hint(b) == NO_HINT {
                continue;
            }
            for pi in self.nb_off[a] as usize..self.nb_off[a + 1] as usize {
                let p = self.nb[pi] as usize;
                if self.endpoint[p] as usize == b && self.slack(p / 2) == 0 {
                    self.mate[a] = p as i32;
                    self.mate[b] = (p ^ 1) as i32;
                    break;
                }
            }
        }
        for &(a, b) in &fresh_pairs {
            let (a, b) = (a as usize, b as usize);
            if self.mate[a] != NONE || self.mate[b] != NONE {
                continue;
            }
            for pi in self.nb_off[a] as usize..self.nb_off[a + 1] as usize {
                let p = self.nb[pi] as usize;
                if self.endpoint[p] as usize == b && self.slack(p / 2) == 0 {
                    self.mate[a] = p as i32;
                    self.mate[b] = (p ^ 1) as i32;
                    break;
                }
            }
        }
    }

    /// Exports the final primal/dual state of the last solve as a
    /// [`WarmStart`] for a later related solve: raw per-vertex duals
    /// into `duals`, matched pairs into `pairs`, surviving blossoms into
    /// `blossoms`, returning the complement base they are relative to.
    ///
    /// Blossoms are exported *structurally* — each positive-dual
    /// top-level blossom is serialized with its whole subtree so the
    /// importing solve can re-instantiate it (a zero-dual top shell
    /// hides nothing, so only its nested blossoms are exported). Raw
    /// duals leave intra-blossom edges negative on vertex slack alone
    /// (their tightness lives in `du + dv + 2·Σ z_B = 2wt`); the import
    /// validates each subtree against its new graph and flattens the
    /// `z`s of anything that no longer fits back into the member duals.
    /// Carrying the structure keeps every surviving matched edge tight —
    /// including each blossom base's external mate, the pair a
    /// flattening export necessarily loses.
    ///
    /// Only meaningful directly after [`BlossomArena::solve`] /
    /// [`BlossomArena::solve_warm`] (the state is reset by the next
    /// solve's prepare).
    pub fn export_warm(
        &self,
        duals: &mut Vec<i64>,
        pairs: &mut Vec<(u32, u32)>,
        blossoms: &mut Vec<StoredBlossom>,
    ) -> i64 {
        let (n, two_n) = (self.n, 2 * self.n);
        duals.clear();
        duals.extend_from_slice(&self.dualvar[..n]);
        blossoms.clear();
        for b in n..two_n {
            if self.blossombase[b] >= 0 && self.blossomparent[b] == NONE {
                self.store_blossom_tree(b, blossoms);
            }
        }
        pairs.clear();
        for v in 0..n {
            let p = self.mate[v];
            if p >= 0 {
                let u = self.endpoint[p as usize] as usize;
                if v < u {
                    pairs.push((v as u32, u as u32));
                }
            }
        }
        self.w_base
    }

    /// Serializes top-level blossom `b` for [`BlossomArena::export_warm`]:
    /// a positive-dual blossom is stored with its entire subtree
    /// (parents pushed before children, so list order is a valid
    /// top-down build order); a zero-dual one hides no dual weight, so
    /// only its nested blossoms are worth carrying.
    fn store_blossom_tree(&self, b: usize, out: &mut Vec<StoredBlossom>) {
        if self.dualvar[b] > 0 {
            self.store_blossom(b, -1, out);
        } else {
            for &c in &self.blossomchilds[b] {
                if c as usize >= self.n {
                    self.store_blossom_tree(c as usize, out);
                }
            }
        }
    }

    /// Appends blossom `b` (and recursively its sub-blossoms) to `out`
    /// with the given stored-parent position, returning `b`'s position.
    fn store_blossom(&self, b: usize, parent: i32, out: &mut Vec<StoredBlossom>) -> u32 {
        let pos = out.len();
        out.push(StoredBlossom {
            parent,
            z: self.dualvar[b],
            base: self.blossombase[b] as u32,
            childs: Vec::new(),
            endps: Vec::new(),
        });
        let mut childs = Vec::with_capacity(self.blossomchilds[b].len());
        for &c in &self.blossomchilds[b] {
            childs.push(if (c as usize) < self.n {
                c << 1
            } else {
                (self.store_blossom(c as usize, pos as i32, out) << 1) | 1
            });
        }
        let endps = self.blossomendps[b]
            .iter()
            .map(|&p| (self.endpoint[p as usize], self.endpoint[(p ^ 1) as usize]))
            .collect();
        out[pos].childs = childs;
        out[pos].endps = endps;
        pos as u32
    }

    /// Slack of edge `k` under the current duals (doubled weights keep
    /// every slack integral; zero slack means the edge is tight).
    #[inline]
    fn slack(&self, k: usize) -> i64 {
        self.dualvar[self.edge_u[k] as usize] + self.dualvar[self.edge_v[k] as usize]
            - 2 * self.wt[k]
    }

    /// Resolves a stored cycle edge `(from, to)` to the endpoint index
    /// `q` with `endpoint[q] = from` whose edge satisfies
    /// `slack + extra == 0` (tight under the importing blossom's z
    /// chain), or -1 if no such edge exists in the current graph.
    fn resolve_endp(&self, from: u32, to: u32, extra: i64) -> i32 {
        let f = from as usize;
        for pi in self.nb_off[f] as usize..self.nb_off[f + 1] as usize {
            let p = self.nb[pi] as usize;
            if self.endpoint[p] == to && self.slack(p / 2) + extra == 0 {
                return (p ^ 1) as i32;
            }
        }
        NONE
    }

    /// Arms free vertex `v` (best edge `k` to an S-blossom) as a type-2
    /// dual-step candidate: its slack shrinks one-for-one with the
    /// stage total, so `slack + t_now` is invariant.
    #[inline]
    fn push_delta2(&mut self, v: usize, k: usize) {
        self.delta_heap.push(Reverse((self.slack(k) + self.t_now, 2, v as u32)));
    }

    /// Arms top-level S-blossom `b` (best edge `k` to another
    /// S-blossom) as a type-3 candidate: both endpoints shrink, so the
    /// half-slack loses one per unit of stage total.
    #[inline]
    fn push_delta3(&mut self, b: usize, k: usize) {
        self.delta_heap.push(Reverse((self.slack(k) / 2 + self.t_now, 3, b as u32)));
    }

    /// Arms top-level T-blossom `b` as a type-4 (expansion) candidate:
    /// its dual shrinks one-for-one with the stage total.
    #[inline]
    fn push_delta4(&mut self, b: usize) {
        self.delta_heap.push(Reverse((self.dualvar[b] + self.t_now, 4, b as u32)));
    }

    /// The reference linear-scan dual step (the pre-heap algorithm),
    /// kept as the debug-build cross-check of every heap decision.
    /// Returns `(deltatype, delta)`; on ties the chosen *candidate* may
    /// differ from the heap's, but the delta value is what downstream
    /// correctness depends on.
    #[cfg(debug_assertions)]
    fn reference_delta(&self) -> (i32, i64) {
        let (n, two_n) = (self.n, 2 * self.n);
        let mut deltatype = -1;
        let mut delta = 0i64;
        for v in 0..n {
            if self.label[self.inblossom[v] as usize] == 0 && self.bestedge[v] != NONE {
                let d = self.slack(self.bestedge[v] as usize);
                if deltatype == -1 || d < delta {
                    delta = d;
                    deltatype = 2;
                }
            }
        }
        for b in 0..two_n {
            if self.blossomparent[b] == NONE && self.label[b] == 1 && self.bestedge[b] != NONE {
                let d = self.slack(self.bestedge[b] as usize) / 2;
                if deltatype == -1 || d < delta {
                    delta = d;
                    deltatype = 3;
                }
            }
        }
        for b in n..two_n {
            if self.blossombase[b] >= 0
                && self.blossomparent[b] == NONE
                && self.label[b] == 2
                && (deltatype == -1 || self.dualvar[b] < delta)
            {
                delta = self.dualvar[b];
                deltatype = 4;
            }
        }
        if deltatype == -1 {
            deltatype = 1;
            delta = self.dualvar[..n].iter().copied().min().unwrap_or(0).max(0);
        }
        (deltatype, delta)
    }

    /// Appends every real vertex inside blossom `b` to `out`.
    fn collect_leaves(&self, b: usize, out: &mut Vec<u32>) {
        if b < self.n {
            out.push(b as u32);
        } else {
            for &t in &self.blossomchilds[b] {
                self.collect_leaves(t as usize, out);
            }
        }
    }

    /// Labels vertex `w` (and its top-level blossom) with `t`, reached
    /// through remote endpoint `p`. An S label enqueues the blossom's
    /// vertices for scanning; a T label immediately pulls the base's
    /// mate into the tree as S.
    fn assign_label(&mut self, w: usize, t: i8, p: i32) {
        let b = self.inblossom[w] as usize;
        debug_assert!(self.label[w] == 0 && self.label[b] == 0);
        self.label[w] = t;
        self.label[b] = t;
        self.labelend[w] = p;
        self.labelend[b] = p;
        self.bestedge[w] = NONE;
        self.bestedge[b] = NONE;
        if t == 2 && b >= self.n {
            // A top-level blossom turned T: it is now an expansion
            // candidate for the dual step.
            self.push_delta4(b);
        }
        if t == 1 {
            let mut leaves = std::mem::take(&mut self.leaves);
            leaves.clear();
            self.collect_leaves(b, &mut leaves);
            self.queue.extend_from_slice(&leaves);
            self.leaves = leaves;
        } else {
            let base = self.blossombase[b] as usize;
            let mate_base = self.mate[base];
            debug_assert!(mate_base >= 0);
            let next = self.endpoint[mate_base as usize] as usize;
            self.assign_label(next, 1, mate_base ^ 1);
        }
    }

    /// Traces back from the S-vertices `v` and `w` simultaneously.
    /// Returns the base vertex of the first common ancestor blossom, or
    /// -1 if the paths reach two different roots (an augmenting path).
    fn scan_blossom(&mut self, mut v: i32, mut w: i32) -> i32 {
        let mut path = std::mem::take(&mut self.scan_path);
        path.clear();
        let mut base = NONE;
        while v != NONE || w != NONE {
            let mut b = self.inblossom[v as usize] as usize;
            if self.label[b] & 4 != 0 {
                base = self.blossombase[b];
                break;
            }
            debug_assert_eq!(self.label[b], 1);
            path.push(b as u32);
            self.label[b] = 5; // breadcrumb
            debug_assert_eq!(self.labelend[b], self.mate[self.blossombase[b] as usize]);
            if self.labelend[b] == NONE {
                v = NONE; // reached a root
            } else {
                v = self.endpoint[self.labelend[b] as usize] as i32;
                b = self.inblossom[v as usize] as usize;
                debug_assert_eq!(self.label[b], 2);
                debug_assert!(self.labelend[b] >= 0);
                v = self.endpoint[self.labelend[b] as usize] as i32;
            }
            if w != NONE {
                std::mem::swap(&mut v, &mut w);
            }
        }
        for &b in &path {
            self.label[b as usize] = 1;
        }
        self.scan_path = path;
        base
    }

    /// Shrinks the odd alternating cycle through edge `k` with common
    /// ancestor base `base` into a new blossom node.
    fn add_blossom(&mut self, base: usize, k: usize) {
        let (mut v, mut w) = (self.edge_u[k] as usize, self.edge_v[k] as usize);
        let bb = self.inblossom[base] as usize;
        let mut bv = self.inblossom[v] as usize;
        let mut bw = self.inblossom[w] as usize;
        // btwc-allow(PANIC-HOT): arena invariant — `unused` is sized to
        // one blossom slot per event, so a pop only fails on internal
        // corruption, not on any decodable input.
        let b = self.unused.pop().expect("a cluster of n events needs at most n blossoms") as usize;
        self.blossombase[b] = base as i32;
        self.blossomparent[b] = NONE;
        self.blossomparent[bb] = b as i32;

        // Collect the cycle's sub-blossoms and connecting endpoints:
        // walk both tree paths down to the base.
        let mut path = std::mem::take(&mut self.blossomchilds[b]);
        let mut endps = std::mem::take(&mut self.blossomendps[b]);
        path.clear();
        endps.clear();
        while bv != bb {
            self.blossomparent[bv] = b as i32;
            path.push(bv as u32);
            endps.push(self.labelend[bv] as u32);
            debug_assert!(self.labelend[bv] >= 0);
            v = self.endpoint[self.labelend[bv] as usize] as usize;
            bv = self.inblossom[v] as usize;
        }
        path.push(bb as u32);
        path.reverse();
        endps.reverse();
        endps.push((2 * k) as u32);
        while bw != bb {
            self.blossomparent[bw] = b as i32;
            path.push(bw as u32);
            endps.push((self.labelend[bw] ^ 1) as u32);
            debug_assert!(self.labelend[bw] >= 0);
            w = self.endpoint[self.labelend[bw] as usize] as usize;
            bw = self.inblossom[w] as usize;
        }
        debug_assert_eq!(self.label[bb], 1);
        self.label[b] = 1;
        self.labelend[b] = self.labelend[bb];
        self.dualvar[b] = 0;
        self.blossomchilds[b] = path;
        self.blossomendps[b] = endps;

        // Former T-vertices become S-vertices of the new blossom.
        let mut leaves = std::mem::take(&mut self.leaves);
        leaves.clear();
        self.collect_leaves(b, &mut leaves);
        for &vx in &leaves {
            let vx = vx as usize;
            if self.label[self.inblossom[vx] as usize] == 2 {
                self.queue.push(vx as u32);
            }
            self.inblossom[vx] = b as u32;
        }
        self.leaves = leaves;

        // Merge the sub-blossoms' least-slack edge lists.
        let two_n = 2 * self.n;
        let mut bestedgeto = std::mem::take(&mut self.bestedgeto);
        bestedgeto.clear();
        bestedgeto.resize(two_n, NONE);
        let mut cand = std::mem::take(&mut self.cand);
        for ci in 0..self.blossomchilds[b].len() {
            let bvx = self.blossomchilds[b][ci] as usize;
            cand.clear();
            if self.has_best[bvx] {
                cand.extend_from_slice(&self.blossombest[bvx]);
            } else {
                let mut lvs = std::mem::take(&mut self.leaves2);
                lvs.clear();
                self.collect_leaves(bvx, &mut lvs);
                for &lf in &lvs {
                    let lf = lf as usize;
                    for pi in self.nb_off[lf] as usize..self.nb_off[lf + 1] as usize {
                        cand.push(self.nb[pi] / 2);
                    }
                }
                self.leaves2 = lvs;
            }
            for &kk in &cand {
                let kk = kk as usize;
                let (mut i, mut j) = (self.edge_u[kk] as usize, self.edge_v[kk] as usize);
                if self.inblossom[j] as usize == b {
                    std::mem::swap(&mut i, &mut j);
                }
                let bj = self.inblossom[j] as usize;
                if bj != b
                    && self.label[bj] == 1
                    && (bestedgeto[bj] == NONE
                        || self.slack(kk) < self.slack(bestedgeto[bj] as usize))
                {
                    bestedgeto[bj] = kk as i32;
                }
            }
            self.blossombest[bvx].clear();
            self.has_best[bvx] = false;
            self.bestedge[bvx] = NONE;
        }
        self.cand = cand;
        let mut best = std::mem::take(&mut self.blossombest[b]);
        best.clear();
        let mut bk = NONE;
        for &e in bestedgeto.iter() {
            if e != NONE {
                best.push(e as u32);
                if bk == NONE || self.slack(e as usize) < self.slack(bk as usize) {
                    bk = e;
                }
            }
        }
        self.bestedgeto = bestedgeto;
        self.blossombest[b] = best;
        self.has_best[b] = true;
        self.bestedge[b] = bk;
        if bk != NONE {
            // The merged S-blossom inherits a least-slack edge; its
            // buried children's candidates die at validation.
            self.push_delta3(b, bk as usize);
        }
    }

    /// Expands blossom `b`, promoting its children to top level. During
    /// a stage (`endstage == false`, dual hit zero on a T-blossom) the
    /// children along the alternating path through the blossom are
    /// relabeled; at stage end the structure is simply dissolved.
    fn expand_blossom(&mut self, b: usize, endstage: bool) {
        // Take `b`'s lists for the duration of the call (returned
        // cleared below, so the capacity is recycled, not reallocated):
        // nothing below reads `blossomchilds[b]`/`blossomendps[b]`
        // through `self` — recursion and leaf collection only touch
        // sub-blossoms, whose vertices were re-pointed away from `b`
        // first.
        let childs = std::mem::take(&mut self.blossomchilds[b]);
        let endps = std::mem::take(&mut self.blossomendps[b]);
        for &s in &childs {
            let s = s as usize;
            self.blossomparent[s] = NONE;
            if s < self.n {
                self.inblossom[s] = s as u32;
            } else if endstage && self.dualvar[s] == 0 {
                self.expand_blossom(s, endstage);
            } else {
                let mut lvs = std::mem::take(&mut self.leaves2);
                lvs.clear();
                self.collect_leaves(s, &mut lvs);
                for &v in &lvs {
                    self.inblossom[v as usize] = s as u32;
                }
                self.leaves2 = lvs;
            }
        }
        if !endstage && self.label[b] == 2 {
            let len = childs.len() as isize;
            let idx = |j: isize| -> usize { j.rem_euclid(len) as usize };
            debug_assert!(self.labelend[b] >= 0);
            let entrychild =
                self.inblossom[self.endpoint[(self.labelend[b] ^ 1) as usize] as usize] as usize;
            let mut j = childs
                .iter()
                .position(|&c| c as usize == entrychild)
                // btwc-allow(PANIC-HOT): blossom invariant — the entry
                // endpoint's enclosing sub-blossom is a child of `b` by
                // the `inblossom` relation maintained in add_blossom.
                .expect("entry child must be a sub-blossom") as isize;
            let (jstep, endptrick): (isize, u32) = if j & 1 != 0 {
                j -= len;
                (1, 0)
            } else {
                (-1, 1)
            };
            // Walk from the entry child to the base, alternately
            // relabeling T- and stepping over S-sub-blossoms.
            let mut p = self.labelend[b] as u32;
            while j != 0 {
                let ep1 = self.endpoint[(p ^ 1) as usize] as usize;
                self.label[ep1] = 0;
                let q = endps[idx(j - endptrick as isize)] ^ endptrick ^ 1;
                self.label[self.endpoint[q as usize] as usize] = 0;
                self.assign_label(ep1, 2, p as i32);
                self.allowedge[(endps[idx(j - endptrick as isize)] / 2) as usize] = true;
                j += jstep;
                p = endps[idx(j - endptrick as isize)] ^ endptrick;
                self.allowedge[(p / 2) as usize] = true;
                j += jstep;
            }
            // Relabel the base sub-blossom without stepping to its mate.
            let bv = childs[idx(j)] as usize;
            let ep1 = self.endpoint[(p ^ 1) as usize] as usize;
            self.label[ep1] = 2;
            self.label[bv] = 2;
            self.labelend[ep1] = p as i32;
            self.labelend[bv] = p as i32;
            self.bestedge[bv] = NONE;
            if bv >= self.n {
                // Direct T relabel (bypasses `assign_label`): arm the
                // freshly exposed sub-blossom for expansion.
                self.push_delta4(bv);
            }
            // The remaining children leave the tree unless a vertex of
            // theirs was reached from outside the expanding blossom.
            j += jstep;
            while childs[idx(j)] as usize != entrychild {
                let bv = childs[idx(j)] as usize;
                if self.label[bv] == 1 {
                    j += jstep;
                    continue;
                }
                let mut lvs = std::mem::take(&mut self.leaves2);
                lvs.clear();
                self.collect_leaves(bv, &mut lvs);
                let labeled =
                    lvs.iter().copied().find(|&v| self.label[v as usize] != 0).map(|v| v as usize);
                if let Some(v) = labeled {
                    self.leaves2 = lvs;
                    debug_assert_eq!(self.label[v], 2);
                    debug_assert_eq!(self.inblossom[v] as usize, bv);
                    self.label[v] = 0;
                    let base = self.blossombase[bv] as usize;
                    self.label[self.endpoint[self.mate[base] as usize] as usize] = 0;
                    let le = self.labelend[v];
                    self.assign_label(v, 2, le);
                } else {
                    // The child leaves the tree free: vertices that
                    // tracked a best edge while buried become live
                    // type-2 candidates again, so re-arm them (their
                    // slacks were frozen inside the T-blossom, leaving
                    // any old heap entries as harmless underestimates).
                    for &u in &lvs {
                        let u = u as usize;
                        if self.bestedge[u] != NONE {
                            let k = self.bestedge[u] as usize;
                            self.push_delta2(u, k);
                        }
                    }
                    self.leaves2 = lvs;
                }
                j += jstep;
            }
        }
        // Recycle the slot (and the taken lists' capacity).
        let (mut childs, mut endps) = (childs, endps);
        childs.clear();
        endps.clear();
        self.blossomchilds[b] = childs;
        self.blossomendps[b] = endps;
        self.label[b] = -1;
        self.labelend[b] = NONE;
        self.blossombase[b] = NONE;
        self.blossombest[b].clear();
        self.has_best[b] = false;
        self.bestedge[b] = NONE;
        self.unused.push(b as u32);
    }

    /// Swaps matched and unmatched edges around blossom `b` so that
    /// vertex `v` becomes its base (recursing into sub-blossoms).
    fn augment_blossom(&mut self, b: usize, v: usize) {
        let mut t = v;
        while self.blossomparent[t] != b as i32 {
            t = self.blossomparent[t] as usize;
        }
        if t >= self.n {
            self.augment_blossom(t, v);
        }
        // Take `b`'s lists for the walk (restored rotated below):
        // recursive augments only ever reference sub-blossoms of `b`.
        let mut childs = std::mem::take(&mut self.blossomchilds[b]);
        let mut endps = std::mem::take(&mut self.blossomendps[b]);
        let len = childs.len() as isize;
        let idx = |j: isize| -> usize { j.rem_euclid(len) as usize };
        // btwc-allow(PANIC-HOT): blossom invariant — `t` comes from the
        // caller walking `blossomchilds[b]`, so membership holds by
        // construction; hostile input cannot reach this.
        let i = childs.iter().position(|&c| c as usize == t).expect("t is a child of b") as isize;
        let mut j = i;
        let (jstep, endptrick): (isize, u32) = if i & 1 != 0 {
            j -= len;
            (1, 0)
        } else {
            (-1, 1)
        };
        while j != 0 {
            j += jstep;
            let t1 = childs[idx(j)] as usize;
            let p = endps[idx(j - endptrick as isize)] ^ endptrick;
            if t1 >= self.n {
                self.augment_blossom(t1, self.endpoint[p as usize] as usize);
            }
            j += jstep;
            let t2 = childs[idx(j)] as usize;
            if t2 >= self.n {
                self.augment_blossom(t2, self.endpoint[(p ^ 1) as usize] as usize);
            }
            self.mate[self.endpoint[p as usize] as usize] = (p ^ 1) as i32;
            self.mate[self.endpoint[(p ^ 1) as usize] as usize] = p as i32;
        }
        childs.rotate_left(i as usize);
        endps.rotate_left(i as usize);
        self.blossombase[b] = self.blossombase[childs[0] as usize];
        self.blossomchilds[b] = childs;
        self.blossomendps[b] = endps;
    }

    /// Augments the matching along the path through tight edge `k`,
    /// flipping matched/unmatched edges back to each tree root.
    fn augment_matching(&mut self, k: usize) {
        let (v, w) = (self.edge_u[k] as usize, self.edge_v[k] as usize);
        for (s0, p0) in [(v, (2 * k + 1) as i32), (w, (2 * k) as i32)] {
            let mut s = s0;
            let mut p = p0;
            loop {
                let bs = self.inblossom[s] as usize;
                debug_assert_eq!(self.label[bs], 1);
                debug_assert_eq!(self.labelend[bs], self.mate[self.blossombase[bs] as usize]);
                if bs >= self.n {
                    self.augment_blossom(bs, s);
                }
                self.mate[s] = p;
                if self.labelend[bs] == NONE {
                    break; // reached the tree root
                }
                let t = self.endpoint[self.labelend[bs] as usize] as usize;
                let bt = self.inblossom[t] as usize;
                debug_assert_eq!(self.label[bt], 2);
                debug_assert!(self.labelend[bt] >= 0);
                s = self.endpoint[self.labelend[bt] as usize] as usize;
                let j = self.endpoint[(self.labelend[bt] ^ 1) as usize] as usize;
                debug_assert_eq!(self.blossombase[bt] as usize, t);
                if bt >= self.n {
                    self.augment_blossom(bt, j);
                }
                self.mate[j] = self.labelend[bt];
                p = self.labelend[bt] ^ 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btwc_mwpm::brute::brute_force_min_weight;
    use btwc_noise::SimRng;

    fn solve_fresh(n: usize, edges: &[ClusterEdge]) -> (Vec<(usize, usize)>, i64) {
        let mut arena = BlossomArena::new();
        let mut pairs = Vec::new();
        let total = arena.solve(n, edges, &mut pairs);
        (pairs, total)
    }

    fn brute(n: usize, edges: &[ClusterEdge]) -> Option<i64> {
        brute_force_min_weight(n, |u, v| {
            edges
                .iter()
                .filter(|e| {
                    (e.u as usize, e.v as usize) == (u, v) || (e.u as usize, e.v as usize) == (v, u)
                })
                .map(|e| e.weight)
                .min()
        })
    }

    #[test]
    fn empty_graph_is_trivially_matched() {
        let (pairs, total) = solve_fresh(0, &[]);
        assert!(pairs.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn two_vertices_single_edge() {
        let (pairs, total) = solve_fresh(2, &[ClusterEdge::new(0, 1, 7)]);
        assert_eq!(pairs, vec![(0, 1)]);
        assert_eq!(total, 7);
    }

    #[test]
    fn four_vertices_chooses_cheaper_pairing() {
        let edges = [
            ClusterEdge::new(0, 1, 1),
            ClusterEdge::new(2, 3, 1),
            ClusterEdge::new(0, 2, 10),
            ClusterEdge::new(1, 3, 10),
            ClusterEdge::new(0, 3, 10),
            ClusterEdge::new(1, 2, 10),
        ];
        let (pairs, total) = solve_fresh(4, &edges);
        assert_eq!(total, 2);
        assert_eq!(pairs, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn forced_expensive_pairing() {
        let edges = [
            ClusterEdge::new(0, 1, 1),
            ClusterEdge::new(0, 2, 1),
            ClusterEdge::new(0, 3, 1),
            ClusterEdge::new(1, 2, 50),
            ClusterEdge::new(1, 3, 60),
            ClusterEdge::new(2, 3, 70),
        ];
        let (_, total) = solve_fresh(4, &edges);
        assert_eq!(total, 51);
    }

    #[test]
    fn triangles_joined_by_bridge_force_blossoms() {
        // Two odd cycles joined by one cheap bridge: the solver must
        // shrink both triangles to route the matching through the
        // bridge.
        let edges = [
            ClusterEdge::new(0, 1, 2),
            ClusterEdge::new(1, 2, 2),
            ClusterEdge::new(0, 2, 2),
            ClusterEdge::new(3, 4, 2),
            ClusterEdge::new(4, 5, 2),
            ClusterEdge::new(3, 5, 2),
            ClusterEdge::new(2, 3, 1),
        ];
        let (pairs, total) = solve_fresh(6, &edges);
        assert_eq!(total, 5);
        assert!(pairs.contains(&(2, 3)), "bridge must be matched: {pairs:?}");
    }

    #[test]
    fn zero_weight_edges_are_allowed() {
        let edges = [
            ClusterEdge::new(0, 1, 0),
            ClusterEdge::new(2, 3, 0),
            ClusterEdge::new(0, 2, 5),
            ClusterEdge::new(1, 3, 5),
        ];
        let (_, total) = solve_fresh(4, &edges);
        assert_eq!(total, 0);
    }

    #[test]
    #[should_panic(expected = "no perfect matching")]
    fn star_graph_panics() {
        // All edges share vertex 0, so 1..3 cannot pair up.
        let edges =
            [ClusterEdge::new(0, 1, 1), ClusterEdge::new(0, 2, 1), ClusterEdge::new(0, 3, 1)];
        let _ = solve_fresh(4, &edges);
    }

    #[test]
    #[should_panic(expected = "negative weight")]
    fn negative_weight_rejected() {
        let _ = solve_fresh(2, &[ClusterEdge::new(0, 1, -3)]);
    }

    #[test]
    #[should_panic(expected = "odd vertex count")]
    fn odd_vertex_count_rejected() {
        let _ = solve_fresh(3, &[ClusterEdge::new(0, 1, 1)]);
    }

    #[test]
    fn matches_brute_force_on_random_sparse_graphs() {
        // The transcription pin: random sparse graphs (only keeping
        // those with a perfect matching) must agree with the
        // exponential reference on every instance, across sizes that
        // force deep blossom nesting.
        let mut rng = SimRng::from_seed(0xB10550);
        let mut tested = 0u32;
        for n in [4usize, 6, 8, 10, 12] {
            for _case in 0..200 {
                // Random edge set over a Hamiltonian-ish backbone so
                // perfect matchings usually exist; skip instances
                // without one.
                let mut edges = Vec::new();
                for u in 0..n as u32 {
                    for v in (u + 1)..n as u32 {
                        if rng.bernoulli(0.45) {
                            edges.push(ClusterEdge::new(u, v, (rng.next_u64() % 16) as i64));
                        }
                    }
                }
                let Some(expect) = brute(n, &edges) else { continue };
                tested += 1;
                let (pairs, total) = solve_fresh(n, &edges);
                assert_eq!(total, expect, "n={n} edges={edges:?}");
                assert_eq!(pairs.len(), n / 2, "matching must be perfect");
                let mut seen = vec![false; n];
                for &(u, v) in &pairs {
                    assert!(!seen[u] && !seen[v], "vertex reused in {pairs:?}");
                    seen[u] = true;
                    seen[v] = true;
                }
            }
        }
        assert!(tested > 300, "only {tested} solvable instances generated");
    }

    #[test]
    fn warm_started_solves_match_cold_on_perturbed_graphs() {
        // Solve a random graph cold, export the warm state, perturb the
        // graph the way a window slide does (drop a prefix of vertices,
        // append new ones, keep surviving edges verbatim), and check the
        // warm-started solve agrees with a cold solve of the perturbed
        // graph. Deliberately feeds the stale (pre-perturbation) vertex
        // ids through the caller-side remap, so dropped pairs and
        // repaired duals are exercised, not just the happy path.
        let mut rng = SimRng::from_seed(0x3A97);
        let mut arena = BlossomArena::new();
        let mut pairs = Vec::new();
        let (mut duals, mut warm_pairs) = (Vec::new(), Vec::new());
        let mut blossoms = Vec::new();
        for trial in 0..160 {
            let n = 2 * (2 + rng.below(5)); // 4..=12 vertices
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.bernoulli(0.7) {
                        edges.push(ClusterEdge::new(u, v, rng.below(30) as i64));
                    }
                }
            }
            // Guarantee a perfect matching exists.
            for u in (0..n as u32).step_by(2) {
                edges.push(ClusterEdge::new(u, u + 1, rng.below(30) as i64));
            }
            let _ = arena.solve(n, &edges, &mut pairs);
            let w_base = arena.export_warm(&mut duals, &mut warm_pairs, &mut blossoms);

            // Perturb: drop the first `drop` vertices, append `add` new
            // ones; surviving edges keep their weights.
            let drop = 2 * rng.below(2); // 0 or 2
            let add = 2 * rng.below(3); // 0, 2, or 4
            let n2 = n - drop + add;
            if n2 == 0 {
                continue;
            }
            let mut edges2: Vec<ClusterEdge> = edges
                .iter()
                .filter(|e| e.u as usize >= drop && e.v as usize >= drop)
                .map(|e| ClusterEdge::new(e.u - drop as u32, e.v - drop as u32, e.weight))
                .collect();
            for u in 0..n2 as u32 {
                for v in (n - drop) as u32..n2 as u32 {
                    if u < v && rng.bernoulli(0.6) {
                        edges2.push(ClusterEdge::new(u, v, rng.below(30) as i64));
                    }
                }
            }
            for u in (0..n2 as u32).step_by(2) {
                edges2.push(ClusterEdge::new(u, u + 1, rng.below(30) as i64));
            }
            // Caller-side remap of the exported state (dropped -> gone).
            let mut duals2: Vec<i64> = duals[drop..].to_vec();
            let pairs2: Vec<(u32, u32)> = warm_pairs
                .iter()
                .filter(|&&(a, b)| a as usize >= drop && b as usize >= drop)
                .map(|&(a, b)| (a - drop as u32, b - drop as u32))
                .collect();
            let mut blossoms2 = Vec::new();
            remap_stored_blossoms(
                &blossoms,
                |v| (v as usize >= drop).then(|| v - drop as u32),
                &mut duals2,
                &mut blossoms2,
            );
            let warm = WarmStart { duals: &duals2, pairs: &pairs2, w_base, blossoms: &blossoms2 };
            let warm_total = arena.solve_warm(n2, &edges2, &mut pairs, Some(&warm));
            let (_, cold_total) = solve_fresh(n2, &edges2);
            assert_eq!(
                warm_total, cold_total,
                "trial {trial}: warm-started solve lost exactness (n={n} drop={drop} add={add})"
            );
        }
    }

    #[test]
    fn arena_reuse_across_sizes_matches_fresh_runs() {
        let mut arena = BlossomArena::new();
        let mut rng = SimRng::from_seed(0xA2E4A);
        for _case in 0..150 {
            let n = 2 * (1 + rng.below(6));
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.bernoulli(0.6) {
                        edges.push(ClusterEdge::new(u, v, (rng.next_u64() % 9) as i64));
                    }
                }
            }
            if brute(n, &edges).is_none() {
                continue;
            }
            let mut reused = Vec::new();
            let total_reused = arena.solve(n, &edges, &mut reused);
            let (fresh, total_fresh) = solve_fresh(n, &edges);
            assert_eq!(total_reused, total_fresh, "n={n} edges={edges:?}");
            assert_eq!(reused, fresh, "reused arena must not change the matching");
        }
    }
}
