#![allow(clippy::needless_range_loop)]

//! Exhaustive randomized cross-validation of the blossom solver against
//! the exponential reference matcher. This is the load-bearing test for
//! the whole MWPM baseline: if these agree on thousands of random dense
//! and sparse instances, the decoder's matchings are exact.

use btwc_mwpm::blossom::minimum_weight_perfect_matching;
use btwc_mwpm::brute::brute_force_min_weight;
use btwc_noise::SimRng;

fn random_instance(rng: &mut SimRng, n: usize, density: f64, w_max: i64) -> Vec<Vec<Option<i64>>> {
    let mut w = vec![vec![None; n]; n];
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.uniform() < density {
                let x = (rng.next_u64() % (w_max as u64 + 1)) as i64;
                w[u][v] = Some(x);
                w[v][u] = Some(x);
            }
        }
    }
    w
}

fn check(n: usize, w: &[Vec<Option<i64>>]) {
    let blossom = minimum_weight_perfect_matching(n, |u, v| w[u][v]);
    let brute = brute_force_min_weight(n, |u, v| w[u][v]);
    match (blossom, brute) {
        (None, None) => {}
        (Some(m), Some(expected)) => {
            assert_eq!(
                m.total_weight(),
                expected,
                "blossom found {} but optimum is {expected} on {w:?}",
                m.total_weight()
            );
            // And the matching must be structurally valid.
            let mut seen = vec![false; n];
            for &(u, v) in m.pairs() {
                assert!(u < v && v < n);
                assert!(w[u][v].is_some(), "matched a non-edge ({u},{v})");
                assert!(!seen[u] && !seen[v], "vertex matched twice");
                seen[u] = true;
                seen[v] = true;
            }
            assert!(seen.iter().all(|&s| s), "matching not perfect");
        }
        (b, r) => panic!(
            "feasibility disagreement: blossom={:?} brute={:?} on {w:?}",
            b.map(|m| m.total_weight()),
            r
        ),
    }
}

#[test]
fn dense_instances_match_brute_force() {
    let mut rng = SimRng::from_seed(0xB10550);
    for n in [2usize, 4, 6, 8, 10, 12] {
        for _ in 0..300 {
            let w = random_instance(&mut rng, n, 1.0, 30);
            check(n, &w);
        }
    }
}

#[test]
fn sparse_instances_match_brute_force() {
    let mut rng = SimRng::from_seed(0x5EED5);
    for n in [4usize, 6, 8, 10, 12] {
        for _ in 0..300 {
            let w = random_instance(&mut rng, n, 0.5, 30);
            check(n, &w);
        }
    }
}

#[test]
fn very_sparse_instances_often_infeasible() {
    let mut rng = SimRng::from_seed(0xAFFE);
    for n in [4usize, 6, 8, 10] {
        for _ in 0..300 {
            let w = random_instance(&mut rng, n, 0.25, 10);
            check(n, &w);
        }
    }
}

#[test]
fn tiny_weight_range_forces_tie_breaking() {
    // Weights in {0, 1} create massive degeneracy — a good stress test
    // for the dual bookkeeping.
    let mut rng = SimRng::from_seed(0x7135);
    for n in [6usize, 8, 10, 12, 14] {
        for _ in 0..200 {
            let w = random_instance(&mut rng, n, 0.8, 1);
            check(n, &w);
        }
    }
}

#[test]
fn metric_like_instances_match_brute_force() {
    // Weights shaped like the decoder's: small integer distances on a
    // line metric plus time offsets.
    let mut rng = SimRng::from_seed(0xD15);
    for n in [6usize, 8, 10, 12] {
        for _ in 0..200 {
            let pos: Vec<i64> = (0..n).map(|_| (rng.next_u64() % 12) as i64).collect();
            let t: Vec<i64> = (0..n).map(|_| (rng.next_u64() % 6) as i64).collect();
            let w: Vec<Vec<Option<i64>>> = (0..n)
                .map(|u| {
                    (0..n)
                        .map(|v| (u != v).then(|| (pos[u] - pos[v]).abs() + (t[u] - t[v]).abs()))
                        .collect()
                })
                .collect();
            check(n, &w);
        }
    }
}

#[test]
fn larger_instances_are_feasible_and_valid() {
    // No brute-force oracle here; validate structure and a weight upper
    // bound (greedy matching) on bigger graphs to exercise O(n^3) paths.
    let mut rng = SimRng::from_seed(0xB16);
    for _ in 0..20 {
        let n = 40;
        let w = random_instance(&mut rng, n, 1.0, 100);
        let m = minimum_weight_perfect_matching(n, |u, v| w[u][v]).expect("complete graph");
        let mut seen = vec![false; n];
        for &(u, v) in m.pairs() {
            assert!(!seen[u] && !seen[v]);
            seen[u] = true;
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Greedy pairing 0-1, 2-3, ... is an upper bound.
        let greedy: i64 = (0..n).step_by(2).map(|u| w[u][u + 1].unwrap()).sum();
        assert!(m.total_weight() <= greedy);
    }
}
