//! Property-based cross-validation of the matcher and decoder.

use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_mwpm::blossom::minimum_weight_perfect_matching;
use btwc_mwpm::brute::brute_force_min_weight;
use btwc_mwpm::MwpmDecoder;
use btwc_syndrome::RoundHistory;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Blossom equals brute force on arbitrary (possibly sparse) graphs.
    #[test]
    fn blossom_is_optimal(
        n in prop_oneof![Just(4usize), Just(6), Just(8), Just(10)],
        weights in proptest::collection::vec(proptest::option::weighted(0.7, 0i64..40), 45),
    ) {
        let w = |u: usize, v: usize| -> Option<i64> {
            let (a, b) = (u.min(v), u.max(v));
            let idx = b * (b - 1) / 2 + a;
            weights[idx % weights.len()]
        };
        let blossom = minimum_weight_perfect_matching(n, w);
        let brute = brute_force_min_weight(n, w);
        match (blossom, brute) {
            (None, None) => {}
            (Some(m), Some(opt)) => prop_assert_eq!(m.total_weight(), opt),
            (b, r) => prop_assert!(false, "feasibility disagreement: {:?} vs {:?}",
                                   b.map(|m| m.total_weight()), r),
        }
    }

    /// The decoder's corrections cancel the syndrome of any accumulated
    /// data-error pattern observed over a closed window.
    #[test]
    fn corrections_cancel_arbitrary_patterns(
        d in prop_oneof![Just(3u16), Just(5), Just(7)],
        flips in proptest::collection::vec(0usize..49, 0..10),
    ) {
        let code = SurfaceCode::new(d);
        let n = code.num_data_qubits();
        let decoder = MwpmDecoder::new(&code, StabilizerType::X);
        let mut errors = vec![false; n];
        for &q in &flips {
            errors[q % n] ^= true;
        }
        let round = code.syndrome_of(StabilizerType::X, &errors);
        let mut window = RoundHistory::new(round.len(), 2);
        window.push(&round);
        window.push(&round);
        let c = decoder.decode_window(&window);
        let mut residual = errors;
        c.apply_to(&mut residual);
        let s = code.syndrome_of(StabilizerType::X, &residual);
        prop_assert!(s.iter().all(|&b| !b));
    }
}
