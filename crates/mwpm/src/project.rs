//! Projection of matched space-time event pairs onto data-qubit flips.
//!
//! Both off-chip matchers — the dense blossom decoder here and the
//! sparse region-growth decoder in `btwc-sparse` — use the same node
//! convention and the same projection: with `n` detection events,
//! nodes `0..n` are the events and `n..2n` their virtual boundary
//! twins. A real–real pair flips the data qubits along a shortest
//! detector-graph path between the two ancillas (time-like pairs share
//! an ancilla, so the path is empty and nothing is flipped), a
//! real–twin pair flips a shortest path out to the open boundary, and
//! twin–twin pairs are bookkeeping only.

use btwc_lattice::DetectorGraph;
use btwc_syndrome::DetectionEvent;

/// Appends the data-qubit flips implied by matched pairs over `events`
/// (indices `0..events.len()` are events, `events.len()..2*events.len()`
/// their boundary twins) to `flips`. The caller owns the buffer so hot
/// paths can recycle it; duplicates are fine — [`btwc_syndrome::Correction::from_flips`]
/// cancels them pairwise.
///
/// # Panics
///
/// Panics if a pair references a node `>= 2 * events.len()`.
pub fn project_pairs(
    graph: &DetectorGraph,
    events: &[DetectionEvent],
    pairs: &[(usize, usize)],
    flips: &mut Vec<usize>,
) {
    let n = events.len();
    for &(u, v) in pairs {
        assert!(u < 2 * n && v < 2 * n, "pair ({u},{v}) out of range for {n} events");
        match (u < n, v < n) {
            (true, true) => flips.extend(graph.path(events[u].ancilla, events[v].ancilla)),
            (true, false) => flips.extend(graph.path_to_boundary(events[u].ancilla)),
            (false, true) => flips.extend(graph.path_to_boundary(events[v].ancilla)),
            (false, false) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btwc_lattice::{StabilizerType, SurfaceCode};
    use btwc_syndrome::Correction;

    #[test]
    fn projected_pairs_cancel_their_events() {
        let code = SurfaceCode::new(5);
        let ty = StabilizerType::X;
        let graph = code.detector_graph(ty);
        let events = [
            DetectionEvent { ancilla: 0, round: 0 },
            DetectionEvent { ancilla: 7, round: 0 },
            DetectionEvent { ancilla: 3, round: 1 },
        ];
        // Pair the first two, exit the third through the boundary; the
        // twin of event 0 pairs with the twin of event 1 for free.
        let mut flips = Vec::new();
        project_pairs(graph, &events, &[(0, 1), (2, 5), (3, 4)], &mut flips);
        let c = Correction::from_flips(flips);
        let mut errors = vec![false; code.num_data_qubits()];
        c.apply_to(&mut errors);
        let syndrome = code.syndrome_of(ty, &errors);
        for (i, &s) in syndrome.iter().enumerate() {
            let expect = i == 0 || i == 7 || i == 3;
            assert_eq!(s, expect, "ancilla {i}");
        }
    }

    #[test]
    fn time_like_pair_flips_nothing() {
        let code = SurfaceCode::new(5);
        let graph = code.detector_graph(StabilizerType::X);
        let events =
            [DetectionEvent { ancilla: 4, round: 1 }, DetectionEvent { ancilla: 4, round: 2 }];
        let mut flips = Vec::new();
        project_pairs(graph, &events, &[(0, 1), (2, 3)], &mut flips);
        assert!(flips.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pair_rejected() {
        let code = SurfaceCode::new(3);
        let graph = code.detector_graph(StabilizerType::X);
        let events = [DetectionEvent { ancilla: 0, round: 0 }];
        let mut flips = Vec::new();
        project_pairs(graph, &events, &[(0, 2)], &mut flips);
    }
}
