//! Space-time MWPM decoding of detection-event windows.

use std::sync::Mutex;

use btwc_lattice::{DetectorGraph, StabilizerType, SurfaceCode};
use btwc_syndrome::{ComplexDecoder, Correction, DetectionEvent, RoundHistory};

use crate::blossom::{minimum_weight_perfect_matching_with, MatchingScratch};
use crate::project::project_pairs;

/// The heavyweight off-chip decoder: exact minimum-weight perfect
/// matching over space-time detection events.
///
/// Construction (standard Dennis-et-al. decoding graph):
///
/// * one node per detection event `(ancilla, round)`;
/// * real–real edge weight = detector-graph distance + round separation
///   (unit weights per elementary fault, which is exact for the paper's
///   phenomenological model where data and measurement errors share the
///   same rate `p`);
/// * one *virtual boundary twin* per event, connected only to its own
///   event at that event's boundary distance; twins are pairwise free,
///   which lets any subset of events exit through the boundary while the
///   matching stays perfect.
///
/// Matched pairs are projected back onto data qubits: space-like pairs
/// flip the qubits along a shortest detector-graph path, time-like pairs
/// (measurement errors) flip nothing, boundary pairs flip a shortest
/// path out of the lattice.
#[derive(Debug)]
pub struct MwpmDecoder {
    ty: StabilizerType,
    graph: DetectorGraph,
    /// Reusable decode state (the event buffer and the blossom
    /// solver's dense tables), so the dominant per-decode costs
    /// allocate nothing once warmed up; only the returned
    /// `Correction`'s own storage (and the small `Matching`) is
    /// allocated per call. Behind a mutex to keep the decoder `Sync`
    /// with `&self` decode methods; decodes are short and the
    /// simulators hold one decoder per thread, so the lock is
    /// uncontended in practice.
    scratch: Mutex<DecodeScratch>,
}

#[derive(Debug, Default)]
struct DecodeScratch {
    matching: MatchingScratch,
    events: Vec<DetectionEvent>,
}

impl Clone for MwpmDecoder {
    fn clone(&self) -> Self {
        Self {
            ty: self.ty,
            graph: self.graph.clone(),
            scratch: Mutex::new(DecodeScratch::default()),
        }
    }
}

impl MwpmDecoder {
    /// Builds the decoder for stabilizer type `ty` of `code`.
    #[must_use]
    pub fn new(code: &SurfaceCode, ty: StabilizerType) -> Self {
        Self {
            ty,
            graph: code.detector_graph(ty).clone(),
            scratch: Mutex::new(DecodeScratch::default()),
        }
    }

    /// The stabilizer type this decoder serves.
    #[must_use]
    pub fn stabilizer_type(&self) -> StabilizerType {
        self.ty
    }

    /// Decodes an explicit set of detection events into a correction.
    ///
    /// # Panics
    ///
    /// Panics if any event references an out-of-range ancilla.
    #[must_use]
    pub fn decode_events(&self, events: &[DetectionEvent]) -> Correction {
        let mut scratch = self.scratch.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        Self::decode_events_with(&self.graph, events, &mut scratch.matching).0
    }

    /// [`MwpmDecoder::decode_events`] through exclusive access — no
    /// mutex traffic at all ([`std::sync::Mutex::get_mut`] borrows the
    /// scratch directly). The Monte Carlo engines own their decoders
    /// per thread, so this is their path; the locked `&self` form stays
    /// for shared-reference plumbing (the `ComplexDecoder` trait
    /// object's `&self` decode).
    ///
    /// # Panics
    ///
    /// Panics if any event references an out-of-range ancilla.
    #[must_use]
    pub fn decode_events_mut(&mut self, events: &[DetectionEvent]) -> Correction {
        let scratch = self.scratch.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner);
        Self::decode_events_with(&self.graph, events, &mut scratch.matching).0
    }

    /// [`MwpmDecoder::decode_events_mut`] also reporting the total
    /// space-time weight of the matching it committed to — the quantity
    /// the sparse decoder's exactness is validated against.
    ///
    /// # Panics
    ///
    /// Panics if any event references an out-of-range ancilla.
    #[must_use]
    pub fn decode_events_weighted(&mut self, events: &[DetectionEvent]) -> (Correction, i64) {
        let scratch = self.scratch.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner);
        Self::decode_events_with(&self.graph, events, &mut scratch.matching)
    }

    /// The decode kernel, reusing caller-provided scratch: the
    /// complemented event-weight matrix and the blossom solver's dense
    /// work arrays — the O(n²) per-decode costs — persist across calls
    /// (regrown monotonically, reset in place). The flip list is a
    /// plain local: its storage leaves in the returned `Correction`
    /// anyway, so caching it would buy nothing.
    fn decode_events_with(
        graph: &DetectorGraph,
        events: &[DetectionEvent],
        matching_scratch: &mut MatchingScratch,
    ) -> (Correction, i64) {
        let n = events.len();
        if n == 0 {
            return (Correction::new(), 0);
        }
        for ev in events {
            assert!(ev.ancilla < graph.num_nodes(), "event ancilla {} out of range", ev.ancilla);
        }
        // Nodes 0..n are events, n..2n their boundary twins. The
        // detector-graph distances behind `weight` are precomputed by
        // the lattice, so each query is an O(1) lookup.
        let weight = |u: usize, v: usize| -> Option<i64> {
            match (u < n, v < n) {
                (true, true) => {
                    let (a, b) = (&events[u], &events[v]);
                    let spatial = graph.distance(a.ancilla, b.ancilla);
                    let temporal = a.round.abs_diff(b.round);
                    Some(i64::from(spatial) + temporal as i64)
                }
                (true, false) => {
                    (v - n == u).then(|| i64::from(graph.boundary_distance(events[u].ancilla)))
                }
                (false, true) => {
                    (u - n == v).then(|| i64::from(graph.boundary_distance(events[v].ancilla)))
                }
                (false, false) => Some(0),
            }
        };
        let matching = minimum_weight_perfect_matching_with(matching_scratch, 2 * n, weight)
            .expect("event graph with boundary twins always has a perfect matching");
        let mut flips = Vec::new();
        project_pairs(graph, events, matching.pairs(), &mut flips);
        (Correction::from_flips(flips), matching.total_weight())
    }

    /// Decodes a whole window of measurement rounds (the off-chip path
    /// of the paper's Fig. 2: raw syndromes are shipped out and matched
    /// in space-time). The detection-event diff lands in a reused
    /// buffer — no per-decode allocation — and windows with no events
    /// at all are dismissed by a fused XOR+popcount scan before the
    /// scratch lock is even taken.
    #[must_use]
    pub fn decode_window(&self, history: &RoundHistory) -> Correction {
        if history.detection_event_count() == 0 {
            return Correction::new();
        }
        let mut scratch = self.scratch.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let DecodeScratch { matching, events } = &mut *scratch;
        history.detection_events_into(events);
        Self::decode_events_with(&self.graph, events, matching).0
    }

    /// [`MwpmDecoder::decode_window`] through exclusive access (see
    /// [`MwpmDecoder::decode_events_mut`]): the sweep/lifetime loops
    /// hold one decoder per worker, so they skip the mutex entirely.
    #[must_use]
    pub fn decode_window_mut(&mut self, history: &RoundHistory) -> Correction {
        self.decode_window_weighted(history).0
    }

    /// [`MwpmDecoder::decode_window_mut`] also reporting the committed
    /// matching's total space-time weight.
    #[must_use]
    pub fn decode_window_weighted(&mut self, history: &RoundHistory) -> (Correction, i64) {
        if history.detection_event_count() == 0 {
            return (Correction::new(), 0);
        }
        let scratch = self.scratch.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner);
        let DecodeScratch { matching, events } = &mut *scratch;
        history.detection_events_into(events);
        Self::decode_events_with(&self.graph, events, matching)
    }
}

impl ComplexDecoder for MwpmDecoder {
    fn decode_window(&self, window: &RoundHistory) -> Correction {
        MwpmDecoder::decode_window(self, window)
    }

    fn decode_window_mut(&mut self, window: &RoundHistory) -> Correction {
        MwpmDecoder::decode_window_mut(self, window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btwc_lattice::DataQubit;
    use btwc_noise::{NoiseModel, PhenomenologicalNoise, SimRng};

    fn window_for(code: &SurfaceCode, errors: &[bool], rounds: usize) -> RoundHistory {
        let round = code.syndrome_of(StabilizerType::X, errors);
        let mut h = RoundHistory::new(round.len(), rounds.max(2));
        for _ in 0..rounds {
            h.push(&round);
        }
        h
    }

    #[test]
    fn empty_window_decodes_to_nothing() {
        let code = SurfaceCode::new(5);
        let decoder = MwpmDecoder::new(&code, StabilizerType::X);
        let errors = vec![false; code.num_data_qubits()];
        let c = decoder.decode_window(&window_for(&code, &errors, 3));
        assert!(c.is_empty());
    }

    #[test]
    fn single_interior_error_is_exactly_corrected() {
        let code = SurfaceCode::new(5);
        let decoder = MwpmDecoder::new(&code, StabilizerType::X);
        let q = DataQubit::new(2, 2).index(5);
        let mut errors = vec![false; code.num_data_qubits()];
        errors[q] = true;
        let c = decoder.decode_window(&window_for(&code, &errors, 2));
        assert_eq!(c.qubits(), &[q]);
    }

    #[test]
    fn every_single_error_is_corrected_equivalently() {
        for d in [3u16, 5, 7] {
            let code = SurfaceCode::new(d);
            let decoder = MwpmDecoder::new(&code, StabilizerType::X);
            for q in 0..code.num_data_qubits() {
                let mut errors = vec![false; code.num_data_qubits()];
                errors[q] = true;
                let c = decoder.decode_window(&window_for(&code, &errors, 2));
                let mut residual = errors.clone();
                c.apply_to(&mut residual);
                assert!(
                    code.syndrome_of(StabilizerType::X, &residual).iter().all(|&s| !s),
                    "d={d} q={q}: residual syndrome"
                );
                assert!(
                    !code.is_logical_error(StabilizerType::X, &residual),
                    "d={d} q={q}: logical error introduced"
                );
            }
        }
    }

    #[test]
    fn chain_of_errors_is_corrected_equivalently() {
        // The Fig. 8c scenario Clique must hand off — MWPM resolves it.
        let code = SurfaceCode::new(9);
        let decoder = MwpmDecoder::new(&code, StabilizerType::X);
        let mut errors = vec![false; code.num_data_qubits()];
        for row in 2..6u16 {
            errors[DataQubit::new(row, 4).index(9)] = true;
        }
        let c = decoder.decode_window(&window_for(&code, &errors, 2));
        let mut residual = errors.clone();
        c.apply_to(&mut residual);
        assert!(code.syndrome_of(StabilizerType::X, &residual).iter().all(|&s| !s));
        assert!(!code.is_logical_error(StabilizerType::X, &residual));
    }

    #[test]
    fn measurement_error_produces_no_correction() {
        // Fig. 8d: a transient flip makes a time-like event pair, which
        // projects to no data correction at all.
        let code = SurfaceCode::new(5);
        let decoder = MwpmDecoder::new(&code, StabilizerType::X);
        let n_anc = code.num_ancillas(StabilizerType::X);
        let mut h = RoundHistory::new(n_anc, 8);
        let quiet = vec![false; n_anc];
        let mut flipped = quiet.clone();
        flipped[2] = true;
        h.push(&quiet);
        h.push(&flipped); // transient flip...
        h.push(&quiet); // ...and back
        let c = decoder.decode_window(&h);
        assert!(c.is_empty(), "time-like pair must not touch data qubits");
    }

    #[test]
    fn below_half_distance_errors_never_cause_logical_failure() {
        // MWPM's defining guarantee with perfect measurements: any error
        // of weight <= (d-1)/2 is corrected up to stabilizers.
        for d in [3u16, 5, 7] {
            let code = SurfaceCode::new(d);
            let decoder = MwpmDecoder::new(&code, StabilizerType::X);
            let t = usize::from((d - 1) / 2);
            let mut rng = SimRng::from_seed(0xFEED + u64::from(d));
            for _ in 0..400 {
                let mut errors = vec![false; code.num_data_qubits()];
                for _ in 0..t {
                    let q = rng.below(code.num_data_qubits());
                    errors[q] = true; // duplicates allowed; weight <= t
                }
                let c = decoder.decode_window(&window_for(&code, &errors, 2));
                let mut residual = errors.clone();
                c.apply_to(&mut residual);
                assert!(
                    code.syndrome_of(StabilizerType::X, &residual).iter().all(|&s| !s),
                    "d={d}: residual syndrome for {errors:?}"
                );
                assert!(
                    !code.is_logical_error(StabilizerType::X, &residual),
                    "d={d}: weight<=t error mis-decoded: {errors:?}"
                );
            }
        }
    }

    #[test]
    fn mut_path_matches_locked_path() {
        let code = SurfaceCode::new(7);
        let mut decoder = MwpmDecoder::new(&code, StabilizerType::X);
        let mut rng = SimRng::from_seed(0xBEEF);
        for _ in 0..50 {
            let mut errors = vec![false; code.num_data_qubits()];
            for _ in 0..4 {
                errors[rng.below(code.num_data_qubits())] ^= true;
            }
            let window = window_for(&code, &errors, 3);
            let locked = decoder.decode_window(&window);
            let unlocked = decoder.decode_window_mut(&window);
            assert_eq!(locked, unlocked);
            let events = window.detection_events();
            assert_eq!(decoder.decode_events(&events), decoder.decode_events_mut(&events));
            let (c, w) = decoder.decode_events_weighted(&events);
            assert_eq!(c, locked);
            assert!(w >= 0);
        }
    }

    #[test]
    fn noisy_rounds_with_final_perfect_round_clear_the_syndrome() {
        // Shot protocol: T noisy rounds + one perfect round; after the
        // decode, the accumulated error plus correction must commute with
        // every stabilizer (zero residual syndrome).
        let d = 7u16;
        let code = SurfaceCode::new(d);
        let ty = StabilizerType::X;
        let decoder = MwpmDecoder::new(&code, ty);
        let noise = PhenomenologicalNoise::uniform(0.01);
        let mut rng = SimRng::from_seed(0xABCD);
        let n_anc = code.num_ancillas(ty);
        for _ in 0..100 {
            let mut errors = vec![false; code.num_data_qubits()];
            let mut meas = vec![false; n_anc];
            let mut h = RoundHistory::new(n_anc, usize::from(d) + 1);
            for _ in 0..usize::from(d) {
                noise.sample_data_into(&mut rng, &mut errors);
                noise.sample_measurement_into(&mut rng, &mut meas);
                let mut round = code.syndrome_of(ty, &errors);
                for (r, &m) in round.iter_mut().zip(&meas) {
                    *r ^= m;
                }
                h.push(&round);
            }
            // Final perfect round.
            h.push(&code.syndrome_of(ty, &errors));
            let c = decoder.decode_window(&h);
            let mut residual = errors.clone();
            c.apply_to(&mut residual);
            assert!(
                code.syndrome_of(ty, &residual).iter().all(|&s| !s),
                "decode must explain the final-round syndrome"
            );
        }
    }
}
