//! Minimum-Weight Perfect Matching — the heavyweight off-chip decoder.
//!
//! This crate is the workspace's from-scratch port of the state-of-the-art
//! decoder the paper uses as its complex/off-chip baseline (Dennis et al.,
//! "Topological quantum memory"). It has four layers:
//!
//! 1. [`blossom`] — an exact O(n³) maximum-weight general-graph matching
//!    (Galil-style primal-dual with blossom shrinking), wrapped into
//!    minimum-weight *perfect* matching via weight complementation;
//! 2. [`brute`] — an exponential but obviously-correct reference matcher
//!    used by the property-test suite to validate the blossom code;
//! 3. [`project`] — the shared projection of matched event/boundary-twin
//!    pairs onto data-qubit flips, used here and by the sparse decoder
//!    in `btwc-sparse`;
//! 4. [`MwpmDecoder`] — the space-time decoder: detection events from a
//!    window of measurement rounds become nodes, weights are detector-
//!    graph distance plus time separation, every event may also match to
//!    the open boundary, and matched pairs are projected back to data-
//!    qubit corrections along shortest paths. The `_mut` decode paths
//!    skip the scratch mutex for exclusive callers; `_weighted` variants
//!    also report the committed matching's total weight.
//!
//! # Example
//!
//! ```
//! use btwc_lattice::{StabilizerType, SurfaceCode};
//! use btwc_mwpm::MwpmDecoder;
//! use btwc_syndrome::RoundHistory;
//!
//! let code = SurfaceCode::new(5);
//! let decoder = MwpmDecoder::new(&code, StabilizerType::X);
//!
//! // A single data error seen over two rounds:
//! let mut errors = vec![false; code.num_data_qubits()];
//! errors[12] = true;
//! let round = code.syndrome_of(StabilizerType::X, &errors);
//! let mut history = RoundHistory::new(round.len(), 8);
//! history.push(&round);
//! history.push(&round);
//! let correction = decoder.decode_window(&history);
//! assert_eq!(correction.qubits(), &[12]);
//! ```

pub mod blossom;
pub mod brute;
mod decoder;
pub mod project;

pub use decoder::MwpmDecoder;
