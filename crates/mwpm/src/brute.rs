//! Exponential reference matcher used to validate the blossom solver.
//!
//! A bitmask dynamic program over subsets: `best[mask]` is the cheapest
//! perfect matching of the vertices in `mask`. O(2ⁿ·n) time — fine for
//! the `n ≤ 16` instances the property tests throw at it, and simple
//! enough to be obviously correct.

/// Minimum-weight perfect matching by exhaustive DP.
///
/// Same contract as [`crate::blossom::minimum_weight_perfect_matching`]
/// but returns only the optimal total weight. `None` when no perfect
/// matching exists.
///
/// # Panics
///
/// Panics if `n > 20` (the DP table would not fit) or if a provided
/// weight is negative.
pub fn brute_force_min_weight<F>(n: usize, weight: F) -> Option<i64>
where
    F: Fn(usize, usize) -> Option<i64>,
{
    assert!(n <= 20, "brute force limited to n <= 20, got {n}");
    if n % 2 == 1 {
        return None;
    }
    if n == 0 {
        return Some(0);
    }
    let full = 1usize << n;
    let mut w = vec![None; n * n];
    for u in 0..n {
        for v in (u + 1)..n {
            if let Some(x) = weight(u, v) {
                assert!(x >= 0, "negative weight {x} on edge ({u},{v})");
                w[u * n + v] = Some(x);
            }
        }
    }
    let mut best = vec![None::<i64>; full];
    best[0] = Some(0);
    for mask in 1..full {
        if (mask.count_ones() % 2) != 0 {
            continue;
        }
        let u = mask.trailing_zeros() as usize;
        let rest = mask & !(1 << u);
        let mut acc: Option<i64> = None;
        let mut vs = rest;
        while vs != 0 {
            let v = vs.trailing_zeros() as usize;
            vs &= vs - 1;
            if let (Some(edge), Some(prev)) = (w[u * n + v], best[rest & !(1 << v)]) {
                let cand = edge + prev;
                acc = Some(acc.map_or(cand, |a: i64| a.min(cand)));
            }
        }
        best[mask] = acc;
    }
    best[full - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(brute_force_min_weight(0, |_, _| None), Some(0));
    }

    #[test]
    fn odd_is_none() {
        assert_eq!(brute_force_min_weight(5, |_, _| Some(1)), None);
    }

    #[test]
    fn simple_square() {
        let w = |u: usize, v: usize| -> Option<i64> {
            match (u.min(v), u.max(v)) {
                (0, 1) | (2, 3) => Some(1),
                (0, 2) | (1, 3) => Some(10),
                (0, 3) | (1, 2) => Some(10),
                _ => None,
            }
        };
        assert_eq!(brute_force_min_weight(4, w), Some(2));
    }

    #[test]
    fn missing_edges_block_matching() {
        // Only star edges from 0: vertices 1..3 cannot pair up.
        let w = |u: usize, v: usize| (u == 0 || v == 0).then_some(1i64);
        assert_eq!(brute_force_min_weight(4, w), None);
    }

    #[test]
    fn complete_uniform_graph() {
        assert_eq!(brute_force_min_weight(6, |_, _| Some(3)), Some(9));
    }
}
