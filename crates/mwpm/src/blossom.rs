//! Exact maximum-weight general-graph matching (blossom algorithm).
//!
//! An O(n³) primal–dual implementation following Galil's exposition of
//! Edmonds' algorithm: alternating-forest growth over *shrunk* blossom
//! components with dual-variable adjustments, dense slack bookkeeping,
//! and lazy blossom expansion. Minimum-weight **perfect** matching — what
//! the MWPM decoder needs — is obtained by complementing weights against
//! a large constant so that maximizing weight first maximizes cardinality
//! and then minimizes the original total.
//!
//! The solver's dense state (several `(2n+2)²` tables) dominates the
//! cost of small decodes if reallocated per call, so it lives in a
//! caller-reusable [`MatchingScratch`]:
//! [`minimum_weight_perfect_matching_with`] resets and regrows the
//! scratch instead of allocating, which is what the decode hot path
//! uses.
//!
//! Correctness here is essential (the decoder's accuracy *is* the
//! baseline of the paper's Fig. 14), so this module is property-tested
//! against the exponential reference matcher in [`crate::brute`].

use std::collections::VecDeque;

/// A perfect matching: `pairs[i] = (u, v)` with `u < v`, plus the total
/// weight under the *original* (minimization) weights and an O(1)
/// partner lookup table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    pairs: Vec<(usize, usize)>,
    /// `partners[u]` = vertex matched to `u` (`usize::MAX` = none).
    partners: Vec<usize>,
    total: i64,
}

impl Matching {
    // The table costs one n-word allocation per returned `Matching` —
    // the same order as `pairs` itself, and negligible next to the
    // solver's O(n²) tables — in exchange for O(1) `partner` queries
    // instead of the previous O(n) pair scan.
    fn new(pairs: Vec<(usize, usize)>, n: usize, total: i64) -> Self {
        let mut partners = vec![usize::MAX; n];
        for &(u, v) in &pairs {
            partners[u] = v;
            partners[v] = u;
        }
        Self { pairs, partners, total }
    }

    /// Matched pairs, each as `(u, v)` with `u < v`, sorted by `u`.
    #[must_use]
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// Sum of the original edge weights over the matching.
    #[must_use]
    pub fn total_weight(&self) -> i64 {
        self.total
    }

    /// The partner of vertex `u`, if matched — O(1) table lookup.
    #[must_use]
    pub fn partner(&self, u: usize) -> Option<usize> {
        match self.partners.get(u) {
            Some(&v) if v != usize::MAX => Some(v),
            _ => None,
        }
    }
}

/// Reusable storage for [`minimum_weight_perfect_matching_with`]: the
/// solver's dense tables plus the complemented weight matrix, regrown
/// monotonically and reset (not reallocated) per call.
#[derive(Debug, Clone, Default)]
pub struct MatchingScratch {
    solver: Solver,
    w: Vec<Option<i64>>,
}

impl MatchingScratch {
    /// An empty scratch; it sizes itself on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Computes a minimum-weight perfect matching on `n` vertices
/// (0-indexed). `weight(u, v)` returns `Some(w)` (`w >= 0`) if the edge
/// exists, `None` otherwise; it is only queried for `u < v`.
///
/// Returns `None` when no perfect matching exists (including odd `n`).
///
/// Allocates fresh working state; hot paths should hold a
/// [`MatchingScratch`] and call [`minimum_weight_perfect_matching_with`].
///
/// # Panics
///
/// Panics if any provided weight is negative.
pub fn minimum_weight_perfect_matching<F>(n: usize, weight: F) -> Option<Matching>
where
    F: Fn(usize, usize) -> Option<i64>,
{
    minimum_weight_perfect_matching_with(&mut MatchingScratch::new(), n, weight)
}

/// [`minimum_weight_perfect_matching`] reusing caller-owned scratch
/// storage (allocation-free once the scratch has grown to the largest
/// `n` seen).
///
/// # Panics
///
/// Panics if any provided weight is negative.
pub fn minimum_weight_perfect_matching_with<F>(
    scratch: &mut MatchingScratch,
    n: usize,
    weight: F,
) -> Option<Matching>
where
    F: Fn(usize, usize) -> Option<i64>,
{
    if n == 0 {
        return Some(Matching::new(Vec::new(), 0, 0));
    }
    if n % 2 == 1 {
        return None;
    }
    // Collect weights into the reused matrix; find the max for
    // complementation.
    let w = &mut scratch.w;
    w.clear();
    w.resize(n * n, None);
    let mut w_max = 0i64;
    for u in 0..n {
        for v in (u + 1)..n {
            if let Some(x) = weight(u, v) {
                assert!(x >= 0, "negative weight {x} on edge ({u},{v})");
                w[u * n + v] = Some(x);
                w[v * n + u] = Some(x);
                w_max = w_max.max(x);
            }
        }
    }
    // big enough that every extra matched edge beats any weight savings
    let m = (n as i64) * w_max + 1;
    let solver = &mut scratch.solver;
    solver.prepare(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if let Some(x) = w[u * n + v] {
                // Even weights keep every halved dual quantity integral.
                solver.set_edge(u + 1, v + 1, 2 * (m - x));
            }
        }
    }
    solver.run();
    let mut pairs = Vec::with_capacity(n / 2);
    let mut total = 0i64;
    for u in 1..=n {
        let v = solver.mate[u];
        if v == 0 {
            return None; // not perfect
        }
        if u < v {
            let orig = w[(u - 1) * n + (v - 1)].expect("matched edge must exist");
            total += orig;
            pairs.push((u - 1, v - 1));
        }
    }
    Some(Matching::new(pairs, n, total))
}

/// Dense O(n³) maximum-weight matching solver (1-indexed internally;
/// index 0 is the null sentinel). All storage is regrown monotonically
/// and reset by [`Solver::prepare`], never reallocated between calls of
/// the same or smaller size.
#[derive(Debug, Clone, Default)]
struct Solver {
    n: usize,
    n_x: usize,
    cap: usize,
    /// Representative edge per component pair: original endpoints + weight.
    e_u: Vec<usize>,
    e_v: Vec<usize>,
    e_w: Vec<i64>,
    lab: Vec<i64>,
    /// `mate[u]` = original vertex matched to `u` (0 = unmatched).
    mate: Vec<usize>,
    slack: Vec<usize>,
    st: Vec<usize>,
    pa: Vec<usize>,
    flower_from: Vec<usize>,
    s: Vec<i8>,
    vis: Vec<usize>,
    vis_t: usize,
    flower: Vec<Vec<usize>>,
    q: VecDeque<usize>,
}

impl Solver {
    /// Sizes the tables for `n` vertices and resets every entry to the
    /// pristine state (no allocation once grown to the largest `n`).
    fn prepare(&mut self, n: usize) {
        let cap = 2 * n + 2;
        self.n = n;
        self.n_x = n;
        self.cap = cap;
        let sq = cap * cap;
        self.e_u.clear();
        self.e_u.resize(sq, 0);
        self.e_v.clear();
        self.e_v.resize(sq, 0);
        self.e_w.clear();
        self.e_w.resize(sq, 0);
        for u in 0..cap {
            for v in 0..cap {
                self.e_u[u * cap + v] = u;
                self.e_v[u * cap + v] = v;
            }
        }
        self.lab.clear();
        self.lab.resize(cap, 0);
        self.mate.clear();
        self.mate.resize(cap, 0);
        self.slack.clear();
        self.slack.resize(cap, 0);
        self.st.clear();
        self.st.resize(cap, 0);
        self.pa.clear();
        self.pa.resize(cap, 0);
        self.flower_from.clear();
        self.flower_from.resize(cap * (n + 1), 0);
        self.s.clear();
        self.s.resize(cap, -1);
        self.vis.clear();
        self.vis.resize(cap, 0);
        self.vis_t = 0;
        // Reuse the petal vectors' capacity, drop any stale contents.
        if self.flower.len() < cap {
            self.flower.resize(cap, Vec::new());
        }
        for f in &mut self.flower[..cap] {
            f.clear();
        }
        self.q.clear();
    }

    fn set_edge(&mut self, u: usize, v: usize, w: i64) {
        self.e_w[u * self.cap + v] = w;
        self.e_w[v * self.cap + u] = w;
    }

    #[inline]
    fn ew(&self, u: usize, v: usize) -> i64 {
        self.e_w[u * self.cap + v]
    }

    #[inline]
    fn eu(&self, u: usize, v: usize) -> usize {
        self.e_u[u * self.cap + v]
    }

    #[inline]
    fn ev(&self, u: usize, v: usize) -> usize {
        self.e_v[u * self.cap + v]
    }

    /// Scaled slack of the representative edge stored at `(u, v)` (only
    /// valid for edges between different shrunk components).
    #[inline]
    fn e_delta(&self, u: usize, v: usize) -> i64 {
        let a = self.eu(u, v);
        let b = self.ev(u, v);
        self.lab[a] + self.lab[b] - self.ew(a, b) * 2
    }

    fn update_slack(&mut self, u: usize, x: usize) {
        if self.slack[x] == 0 || self.e_delta(u, x) < self.e_delta(self.slack[x], x) {
            self.slack[x] = u;
        }
    }

    fn set_slack(&mut self, x: usize) {
        self.slack[x] = 0;
        for u in 1..=self.n {
            if self.ew(u, x) > 0 && self.st[u] != x && self.s[self.st[u]] == 0 {
                self.update_slack(u, x);
            }
        }
    }

    fn q_push(&mut self, x: usize) {
        if x <= self.n {
            self.q.push_back(x);
        } else {
            let kids = self.flower[x].clone();
            for k in kids {
                self.q_push(k);
            }
        }
    }

    fn set_st(&mut self, x: usize, b: usize) {
        self.st[x] = b;
        if x > self.n {
            let kids = self.flower[x].clone();
            for k in kids {
                self.set_st(k, b);
            }
        }
    }

    fn get_pr(&mut self, b: usize, xr: usize) -> usize {
        let pr = self.flower[b].iter().position(|&x| x == xr).expect("xr must be a petal of b");
        if pr % 2 == 1 {
            self.flower[b][1..].reverse();
            self.flower[b].len() - pr
        } else {
            pr
        }
    }

    fn set_match(&mut self, u: usize, v: usize) {
        self.mate[u] = self.ev(u, v);
        if u > self.n {
            let ed_u = self.eu(u, v);
            let xr = self.flower_from[u * (self.n + 1) + ed_u];
            let pr = self.get_pr(u, xr);
            for i in 0..pr {
                let a = self.flower[u][i];
                let b = self.flower[u][i ^ 1];
                self.set_match(a, b);
            }
            self.set_match(xr, v);
            self.flower[u].rotate_left(pr);
        }
    }

    fn augment(&mut self, mut u: usize, mut v: usize) {
        loop {
            let xnv = self.st[self.mate[u]];
            self.set_match(u, v);
            if xnv == 0 {
                return;
            }
            let pa_xnv = self.st[self.pa[xnv]];
            self.set_match(xnv, pa_xnv);
            u = pa_xnv;
            v = xnv;
        }
    }

    fn get_lca(&mut self, mut u: usize, mut v: usize) -> usize {
        self.vis_t += 1;
        let t = self.vis_t;
        while u != 0 || v != 0 {
            if u != 0 {
                if self.vis[u] == t {
                    return u;
                }
                self.vis[u] = t;
                u = self.st[self.mate[u]];
                if u != 0 {
                    u = self.st[self.pa[u]];
                }
            }
            std::mem::swap(&mut u, &mut v);
        }
        0
    }

    fn add_blossom(&mut self, u: usize, lca: usize, v: usize) {
        let mut b = self.n + 1;
        while b <= self.n_x && self.st[b] != 0 {
            b += 1;
        }
        if b > self.n_x {
            self.n_x += 1;
        }
        assert!(b < self.cap, "blossom capacity exceeded");
        self.lab[b] = 0;
        self.s[b] = 0;
        self.mate[b] = self.mate[lca];
        self.flower[b].clear();
        self.flower[b].push(lca);
        let mut x = u;
        while x != lca {
            let y = self.st[self.mate[x]];
            self.flower[b].push(x);
            self.flower[b].push(y);
            self.q_push(y);
            x = self.st[self.pa[y]];
        }
        self.flower[b][1..].reverse();
        let mut x = v;
        while x != lca {
            let y = self.st[self.mate[x]];
            self.flower[b].push(x);
            self.flower[b].push(y);
            self.q_push(y);
            x = self.st[self.pa[y]];
        }
        self.set_st(b, b);
        for x in 1..=self.n_x {
            self.e_w[b * self.cap + x] = 0;
            self.e_w[x * self.cap + b] = 0;
        }
        for x in 1..=self.n {
            self.flower_from[b * (self.n + 1) + x] = 0;
        }
        let petals = self.flower[b].clone();
        for &xs in &petals {
            for x in 1..=self.n_x {
                if self.ew(xs, x) > 0
                    && (self.ew(b, x) == 0 || self.e_delta(xs, x) < self.e_delta(b, x))
                {
                    let (pu, pv, pw) = (self.eu(xs, x), self.ev(xs, x), self.ew(xs, x));
                    self.e_u[b * self.cap + x] = pu;
                    self.e_v[b * self.cap + x] = pv;
                    self.e_w[b * self.cap + x] = pw;
                    let (qu, qv, qw) = (self.eu(x, xs), self.ev(x, xs), self.ew(x, xs));
                    self.e_u[x * self.cap + b] = qu;
                    self.e_v[x * self.cap + b] = qv;
                    self.e_w[x * self.cap + b] = qw;
                }
            }
            for x in 1..=self.n {
                if self.flower_from[xs * (self.n + 1) + x] != 0 {
                    self.flower_from[b * (self.n + 1) + x] = xs;
                }
            }
        }
        self.set_slack(b);
    }

    fn expand_blossom(&mut self, b: usize) {
        let petals = self.flower[b].clone();
        for &x in &petals {
            self.set_st(x, x);
        }
        let ed_u = self.eu(b, self.pa[b]);
        let xr = self.flower_from[b * (self.n + 1) + ed_u];
        let pr = self.get_pr(b, xr);
        let mut i = 0;
        while i < pr {
            let xs = self.flower[b][i];
            let xns = self.flower[b][i + 1];
            self.pa[xs] = self.eu(xns, xs);
            self.s[xs] = 1;
            self.s[xns] = 0;
            self.slack[xs] = 0;
            self.set_slack(xns);
            self.q_push(xns);
            i += 2;
        }
        self.s[xr] = 1;
        self.pa[xr] = self.pa[b];
        for i in (pr + 1)..self.flower[b].len() {
            let xs = self.flower[b][i];
            self.s[xs] = -1;
            self.set_slack(xs);
        }
        self.st[b] = 0;
    }

    /// Processes a tight edge `(ed_u, ed_v)` (original endpoints).
    /// Returns `true` if an augmentation happened.
    fn on_found_edge(&mut self, ed_u: usize, ed_v: usize) -> bool {
        let u = self.st[ed_u];
        let v = self.st[ed_v];
        if self.s[v] == -1 {
            self.pa[v] = ed_u;
            self.s[v] = 1;
            let nu = self.st[self.mate[v]];
            self.slack[v] = 0;
            self.slack[nu] = 0;
            self.s[nu] = 0;
            self.q_push(nu);
        } else if self.s[v] == 0 {
            let lca = self.get_lca(u, v);
            if lca == 0 {
                self.augment(u, v);
                self.augment(v, u);
                return true;
            }
            self.add_blossom(u, lca, v);
        }
        false
    }

    /// One phase: grows the alternating forest until an augmenting path
    /// is found (`true`) or duals prove none exists (`false`).
    fn matching_phase(&mut self) -> bool {
        for x in 0..=self.n_x {
            self.s[x] = -1;
            self.slack[x] = 0;
        }
        self.q.clear();
        for x in 1..=self.n_x {
            if self.st[x] == x && self.mate[x] == 0 {
                self.pa[x] = 0;
                self.s[x] = 0;
                self.q_push(x);
            }
        }
        if self.q.is_empty() {
            return false;
        }
        loop {
            while let Some(u) = self.q.pop_front() {
                if self.s[self.st[u]] == 1 {
                    continue;
                }
                for v in 1..=self.n {
                    if self.ew(u, v) > 0 && self.st[u] != self.st[v] {
                        if self.e_delta(u, v) == 0 {
                            if self.on_found_edge(u, v) {
                                return true;
                            }
                        } else {
                            let stv = self.st[v];
                            self.update_slack(u, stv);
                        }
                    }
                }
            }
            // Dual adjustment.
            let mut d = i64::MAX;
            for b in (self.n + 1)..=self.n_x {
                if self.st[b] == b && self.s[b] == 1 {
                    d = d.min(self.lab[b] / 2);
                }
            }
            for x in 1..=self.n_x {
                if self.st[x] == x && self.slack[x] != 0 {
                    let delta = self.e_delta(self.slack[x], x);
                    if self.s[x] == -1 {
                        d = d.min(delta);
                    } else if self.s[x] == 0 {
                        d = d.min(delta / 2);
                    }
                }
            }
            // If the cheapest dual move would drive an exposed/outer
            // vertex's label to zero (or no move is available at all),
            // no augmenting path remains — the matching is maximum.
            let min_outer = (1..=self.n)
                .filter(|&u| self.s[self.st[u]] == 0)
                .map(|u| self.lab[u])
                .min()
                .unwrap_or(i64::MAX);
            if min_outer <= d {
                return false;
            }
            for u in 1..=self.n {
                match self.s[self.st[u]] {
                    0 => self.lab[u] -= d,
                    1 => self.lab[u] += d,
                    _ => {}
                }
            }
            for b in (self.n + 1)..=self.n_x {
                if self.st[b] == b {
                    match self.s[b] {
                        0 => self.lab[b] += d * 2,
                        1 => self.lab[b] -= d * 2,
                        _ => {}
                    }
                }
            }
            self.q.clear();
            for x in 1..=self.n_x {
                if self.st[x] == x
                    && self.slack[x] != 0
                    && self.st[self.slack[x]] != x
                    && self.e_delta(self.slack[x], x) == 0
                {
                    let su = self.slack[x];
                    let (a, b) = (self.eu(su, x), self.ev(su, x));
                    if self.on_found_edge(a, b) {
                        return true;
                    }
                }
            }
            for b in (self.n + 1)..=self.n_x {
                if self.st[b] == b && self.s[b] == 1 && self.lab[b] == 0 {
                    self.expand_blossom(b);
                }
            }
        }
    }

    fn run(&mut self) {
        for u in 0..=self.n {
            self.st[u] = u;
        }
        let mut w_max = 0i64;
        for u in 1..=self.n {
            for v in 1..=self.n {
                self.flower_from[u * (self.n + 1) + v.min(self.n)] = 0;
                w_max = w_max.max(self.ew(u, v));
            }
        }
        for u in 1..=self.n {
            self.flower_from[u * (self.n + 1) + u] = u;
            self.lab[u] = w_max;
        }
        while self.matching_phase() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: usize, weights: &[(usize, usize, i64)]) -> Option<Matching> {
        minimum_weight_perfect_matching(n, |u, v| {
            weights
                .iter()
                .find(|&&(a, b, _)| (a, b) == (u, v) || (a, b) == (v, u))
                .map(|&(_, _, w)| w)
        })
    }

    #[test]
    fn empty_graph_is_trivially_matched() {
        let m = minimum_weight_perfect_matching(0, |_, _| None).unwrap();
        assert!(m.pairs().is_empty());
        assert_eq!(m.total_weight(), 0);
        assert_eq!(m.partner(0), None);
    }

    #[test]
    fn odd_vertex_count_has_no_perfect_matching() {
        assert!(minimum_weight_perfect_matching(3, |_, _| Some(1)).is_none());
    }

    #[test]
    fn two_vertices_single_edge() {
        let m = complete(2, &[(0, 1, 7)]).unwrap();
        assert_eq!(m.pairs(), &[(0, 1)]);
        assert_eq!(m.total_weight(), 7);
        assert_eq!(m.partner(0), Some(1));
        assert_eq!(m.partner(1), Some(0));
        assert_eq!(m.partner(2), None, "out of range is unmatched");
    }

    #[test]
    fn star_graph_has_no_perfect_matching() {
        // All edges share vertex 0, so 1..3 cannot pair among themselves.
        assert!(complete(4, &[(0, 1, 1), (0, 2, 1), (0, 3, 1)]).is_none());
    }

    #[test]
    fn four_vertices_chooses_cheaper_pairing() {
        // Pairings: (01)(23) = 1+1 = 2; (02)(13) = 10+10 = 20; (03)(12) = 10+10.
        let m =
            complete(4, &[(0, 1, 1), (2, 3, 1), (0, 2, 10), (1, 3, 10), (0, 3, 10), (1, 2, 10)])
                .unwrap();
        assert_eq!(m.total_weight(), 2);
        assert_eq!(m.pairs(), &[(0, 1), (2, 3)]);
    }

    #[test]
    fn forced_expensive_pairing() {
        // The cheap edges share vertex 0, so one expensive edge is forced.
        let m = complete(4, &[(0, 1, 1), (0, 2, 1), (0, 3, 1), (1, 2, 50), (1, 3, 60), (2, 3, 70)])
            .unwrap();
        // Best: (0,1)+(2,3)=71, (0,2)+(1,3)=61, (0,3)+(1,2)=51.
        assert_eq!(m.total_weight(), 51);
    }

    #[test]
    fn zero_weight_edges_are_allowed() {
        let m = complete(4, &[(0, 1, 0), (2, 3, 0), (0, 2, 5), (1, 3, 5)]).unwrap();
        assert_eq!(m.total_weight(), 0);
    }

    #[test]
    fn six_vertex_triangle_structure_forces_blossom_logic() {
        // Two triangles {0,1,2} and {3,4,5} joined by one bridge; odd
        // components force the matching through the bridge.
        let edges = [(0, 1, 2), (1, 2, 2), (0, 2, 2), (3, 4, 2), (4, 5, 2), (3, 5, 2), (2, 3, 1)];
        let m = complete(6, &edges).unwrap();
        // Must use bridge (2,3) plus one edge inside each triangle: 1+2+2.
        assert_eq!(m.total_weight(), 5);
        assert_eq!(m.partner(2), Some(3));
    }

    #[test]
    fn partner_table_is_consistent_with_pairs() {
        let m = complete(
            6,
            &[(0, 1, 2), (1, 2, 2), (0, 2, 2), (3, 4, 2), (4, 5, 2), (3, 5, 2), (2, 3, 1)],
        )
        .unwrap();
        for &(u, v) in m.pairs() {
            assert_eq!(m.partner(u), Some(v));
            assert_eq!(m.partner(v), Some(u));
        }
        assert_eq!(m.pairs().len(), 3);
    }

    #[test]
    fn scratch_reuse_across_sizes_matches_fresh_runs() {
        // Shrink and regrow: reuse must never leak state between calls.
        type Problem = (usize, Vec<(usize, usize, i64)>);
        let mut scratch = MatchingScratch::new();
        let problems: Vec<Problem> = vec![
            (6, vec![(0, 1, 2), (1, 2, 2), (0, 2, 2), (3, 4, 2), (4, 5, 2), (3, 5, 2), (2, 3, 1)]),
            (2, vec![(0, 1, 7)]),
            (4, vec![(0, 1, 1), (2, 3, 1), (0, 2, 10), (1, 3, 10), (0, 3, 10), (1, 2, 10)]),
            (6, vec![(0, 1, 2), (1, 2, 2), (0, 2, 2), (3, 4, 2), (4, 5, 2), (3, 5, 2), (2, 3, 1)]),
        ];
        for (n, edges) in problems {
            let weight = |u: usize, v: usize| {
                edges
                    .iter()
                    .find(|&&(a, b, _)| (a, b) == (u, v) || (a, b) == (v, u))
                    .map(|&(_, _, w)| w)
            };
            let reused = minimum_weight_perfect_matching_with(&mut scratch, n, weight).unwrap();
            let fresh = minimum_weight_perfect_matching(n, weight).unwrap();
            assert_eq!(reused, fresh);
        }
    }

    #[test]
    #[should_panic(expected = "negative weight")]
    fn negative_weights_rejected() {
        let _ = complete(2, &[(0, 1, -3)]);
    }
}
